"""Tests for per-bank assignment and spill-code insertion."""

import pytest

from repro.core.greedy import Partition
from repro.ddg.builder import build_loop_ddg
from repro.ir.verify import verify_loop
from repro.machine.machine import CopyModel, MachineDescription
from repro.machine.presets import ideal_machine, paper_machine
from repro.regalloc.assignment import assign_banks
from repro.regalloc.spill import spill_registers
from repro.sched.modulo.scheduler import modulo_schedule
from repro.sim.reference import run_reference
from repro.workloads.kernels import make_kernel


def single_bank_setup(loop, machine):
    ddg = build_loop_ddg(loop, machine.latencies)
    ks = modulo_schedule(loop, ddg, machine)
    part = Partition(n_banks=machine.n_clusters if machine.is_clustered else 1)
    for reg in loop.registers():
        part.assign(reg, 0)
    return ks, ddg, part


class TestAssignBanks:
    def test_success_with_roomy_banks(self, daxpy_loop):
        m = ideal_machine()
        ks, ddg, part = single_bank_setup(daxpy_loop, m)
        out = assign_banks(ks, ddg, part, m)
        assert out.success
        assert out.max_pressure > 0
        assert out.unroll >= 1
        # every liveness name got a physical register
        for (rid, rep), (bank, idx) in out.physical.items():
            assert bank == 0
            assert 0 <= idx < m.regs_per_bank
        assert out.physical_name(daxpy_loop.factory.get("f1").rid).startswith("b0.r")

    def test_physical_assignment_proper(self, daxpy_loop):
        m = ideal_machine()
        ks, ddg, part = single_bank_setup(daxpy_loop, m)
        out = assign_banks(ks, ddg, part, m)
        for bank, coloring in out.per_bank.items():
            assert coloring.success

    def test_failure_reports_spill_candidates(self):
        m = MachineDescription(
            name="tight", n_clusters=1, fus_per_cluster=16, regs_per_bank=4
        )
        loop = make_kernel("lfk7_state")
        ks, ddg, part = single_bank_setup(loop, m)
        out = assign_banks(ks, ddg, part, m)
        assert not out.success
        assert out.spill_candidates
        # invariants are never nominated
        invariant_names = {"fr", "ft", "fq"}
        assert not invariant_names & {r.name for r in out.spill_candidates}


class TestSpillRewrite:
    def test_spill_preserves_semantics(self):
        loop = make_kernel("lfk1_hydro")
        reference = run_reference(loop, trip_count=6)
        target = loop.factory.get("f6")
        m = paper_machine(2, CopyModel.EMBEDDED)
        spilled, n = spill_registers(loop, [target], m)
        assert n == 1
        verify_loop(spilled)
        after = run_reference(spilled, trip_count=6)
        for key, val in reference.memory.items():
            if not key[0].startswith("__spill"):
                assert after.memory[key] == pytest.approx(val)

    def test_accumulator_spill_round_trips_through_memory(self, dot_loop):
        reference = run_reference(dot_loop, trip_count=7)
        f4 = dot_loop.factory.get("f4")
        m = paper_machine(2, CopyModel.EMBEDDED)
        spilled, _ = spill_registers(dot_loop, [f4], m)
        verify_loop(spilled)
        after = run_reference(spilled, trip_count=7)
        # the accumulator's final value now lives in its spill slot
        assert after.memory[("__spill_f4", 0)] == pytest.approx(
            reference.registers[f4.rid]
        )

    def test_unspillable_candidates_raise(self, daxpy_loop):
        m = paper_machine(2, CopyModel.EMBEDDED)
        fa = daxpy_loop.factory.get("fa")  # live-in: no defining op
        with pytest.raises(RuntimeError, match="no spillable"):
            spill_registers(daxpy_loop, [fa], m)

    def test_spill_adds_store_after_def_and_load_before_use(self, daxpy_loop):
        m = paper_machine(2, CopyModel.EMBEDDED)
        f3 = daxpy_loop.factory.get("f3")
        spilled, _ = spill_registers(daxpy_loop, [f3], m)
        kinds = [op.opcode.value for op in spilled.ops]
        # original 5 ops + 1 store + 1 reload
        assert len(spilled.ops) == 7
        store_idx = next(
            i for i, op in enumerate(spilled.ops)
            if op.writes_mem and op.mem.array.startswith("__spill")
        )
        load_idx = next(
            i for i, op in enumerate(spilled.ops)
            if op.reads_mem and op.mem.array.startswith("__spill")
        )
        def_idx = next(
            i for i, op in enumerate(spilled.ops)
            if op.dest is not None and op.dest.name == "f3"
        )
        assert def_idx < store_idx < load_idx
