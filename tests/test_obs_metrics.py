"""Typed metrics registry (repro.obs.metrics) and its wiring into the
evaluation: exported metrics must match the rendered paper tables."""

import json

import pytest

from repro.core.pipeline import PipelineConfig
from repro.evalx.export import aggregate_metrics, run_metrics_json
from repro.evalx.metrics import arithmetic_mean
from repro.evalx.report import render_full_report, render_metrics_summary
from repro.evalx.runner import run_evaluation
from repro.evalx.table1 import compute_table1
from repro.evalx.table2 import compute_table2
from repro.machine.machine import CopyModel
from repro.obs import MetricsRegistry, MetricTypeError, merge_snapshots
from repro.workloads.corpus import spec95_corpus

CONFIG = PipelineConfig(run_regalloc=False)


class TestCounter:
    def test_increments_and_defaults(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["counters"]["hits"] == 5

    def test_rejects_float_bool_and_negative(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(MetricTypeError):
            c.inc(1.5)
        with pytest.raises(MetricTypeError):
            c.inc(True)
        with pytest.raises(MetricTypeError):
            c.inc(-1)


class TestGauge:
    def test_keeps_ints_exact(self):
        reg = MetricsRegistry()
        reg.gauge("ii").set(3)
        value = reg.snapshot()["gauges"]["ii"]
        assert value == 3 and isinstance(value, int)

    def test_accepts_floats(self):
        reg = MetricsRegistry()
        reg.gauge("ipc").set(2.5)
        assert reg.snapshot()["gauges"]["ipc"] == 2.5

    def test_rejects_str_and_bool(self):
        g = MetricsRegistry().gauge("g")
        with pytest.raises(MetricTypeError):
            g.set("high")
        with pytest.raises(MetricTypeError):
            g.set(True)


class TestHistogram:
    def test_streaming_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (3, 1, 2):
            h.observe(v)
        stats = reg.snapshot()["histograms"]["lat"]
        assert stats == {"count": 3, "sum": 6, "min": 1, "max": 3}

    def test_rejects_non_numbers(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(MetricTypeError):
            h.observe("fast")


class TestRegistry:
    def test_same_name_same_kind_is_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_redeclaration_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricTypeError, match="x"):
            reg.gauge("x")
        with pytest.raises(MetricTypeError):
            reg.histogram("x")

    def test_len_and_contains(self):
        reg = MetricsRegistry()
        assert len(reg) == 0 and "a" not in reg
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2 and "a" in reg and "b" in reg

    def test_snapshot_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("z").set(1)
        reg.gauge("a").set(2)
        snap = reg.snapshot()
        json.dumps(snap)
        assert list(snap["gauges"]) == ["a", "z"]


class TestMergeSnapshots:
    def test_counters_sum_gauges_fold(self):
        snaps = []
        for ii in (2, 4):
            reg = MetricsRegistry()
            reg.counter("calls").inc(ii)
            reg.gauge("ii").set(ii)
            snaps.append({"loop": f"l{ii}", **reg.snapshot()})
        agg = merge_snapshots(snaps)
        assert agg["cells"] == 2
        assert agg["counters"]["calls"] == 6
        assert agg["gauges"]["ii"] == {"count": 2, "min": 2, "max": 4, "mean": 3.0}

    def test_empty(self):
        agg = merge_snapshots([])
        assert agg["cells"] == 0


class TestEvaluationMetricsMatchTables:
    """The exported metrics are the paper tables' raw material: recomputing
    Table 1/2 aggregates from the exported gauges must reproduce the
    rendered report exactly (seeded corpus, no failures)."""

    @pytest.fixture(scope="class")
    def run(self):
        return run_evaluation(loops=spec95_corpus(n=8), config=CONFIG,
                              collect_metrics=True)

    def test_every_cell_snapshot_matches_its_loop_metrics(self, run):
        assert not run.failures
        loops = spec95_corpus(n=8)
        assert len(run.cell_metrics) == 6 * len(loops)
        for (i, label), snapshot in run.cell_metrics.items():
            m = run.per_config[label][i]
            assert snapshot["loop"] == loops[i].name == m.loop_name
            gauges = snapshot["gauges"]
            assert gauges["ideal.ii"] == m.ideal_ii
            assert gauges["ideal.min_ii"] == m.ideal_min_ii
            assert gauges["ideal.rec_ii"] == m.ideal_rec_ii
            assert gauges["ideal.res_ii"] == m.ideal_res_ii
            assert gauges["partitioned.ii"] == m.partitioned_ii
            assert gauges["partitioned.ipc"] == m.partitioned_ipc
            assert gauges["copies.body"] == m.n_body_copies
            assert gauges["copies.preheader"] == m.n_preheader_copies
            assert gauges["partitioned.normalized_kernel"] == m.normalized_kernel

    def test_table1_recomputed_from_exported_gauges(self, run):
        t1 = compute_table1(run)
        for key, expected in t1.clustered_ipc.items():
            from repro.evalx.runner import config_label

            label = config_label(*key)
            ipcs = [
                snap["gauges"]["partitioned.ipc"]
                for (_i, lab), snap in sorted(run.cell_metrics.items())
                if lab == label
            ]
            assert arithmetic_mean(ipcs) == expected
        report = render_full_report(run)
        assert t1.format() in report

    def test_table2_recomputed_from_exported_gauges(self, run):
        t2 = compute_table2(run)
        from repro.evalx.runner import config_label

        for key, expected in t2.arith.items():
            label = config_label(*key)
            normalized = [
                snap["gauges"]["partitioned.normalized_kernel"]
                for (_i, lab), snap in sorted(run.cell_metrics.items())
                if lab == label
            ]
            assert arithmetic_mean(normalized) == expected
        assert t2.format() in render_full_report(run)

    def test_metrics_json_document(self, run):
        doc = json.loads(run_metrics_json(run))
        assert doc["schema"] == "repro-compile-metrics/1"
        assert doc["aggregate"] == aggregate_metrics(run)
        assert len(doc["cells"]) == len(run.cell_metrics)
        # configuration-major, loop-minor: same order as the tables
        labels = run.config_labels()
        keys = [(c["config"], c["loop_index"]) for c in doc["cells"]]
        assert keys == sorted(keys, key=lambda k: (labels.index(k[0]), k[1]))

    def test_summary_renders_counters_and_gauges(self, run):
        text = render_metrics_summary(aggregate_metrics(run))
        assert f"Compile metrics ({len(run.cell_metrics)} cells):" in text
        assert "sched.calls" in text
        assert "partitioned.ii" in text

    def test_paper_config_counters_present(self, run):
        agg = aggregate_metrics(run)
        counters = agg["counters"]
        assert counters["sched.calls"] > 0
        assert counters["greedy.placements"] > 0
        assert counters["cache.hits"] + counters["cache.misses"] > 0
        assert counters["copies.inserted"] >= 0

    def test_copy_unit_config_records_more_copy_models(self, run):
        """Embedded and copy-unit cells of the same loop agree on ideal
        gauges (config-independent) but may differ on partitioned ones."""
        emb = run.cell_metrics[(0, "2 Clusters / Embedded")]["gauges"]
        cu = run.cell_metrics[(0, "2 Clusters / Copy Unit")]["gauges"]
        assert emb["ideal.ii"] == cu["ideal.ii"]
        assert emb["loop.n_ops"] == cu["loop.n_ops"]
