"""Tests for named kernels, the synthetic generator and the corpus."""

import pytest

from repro.ddg.analysis import recurrence_ii
from repro.ddg.builder import build_loop_ddg
from repro.ir.verify import verify_loop
from repro.workloads.corpus import CORPUS_SIZE, corpus_summary, spec95_corpus
from repro.workloads.kernels import NAMED_KERNELS, make_kernel
from repro.workloads.synthetic import (
    PROFILES,
    LoopProfile,
    SyntheticLoopGenerator,
    default_profile_mixture,
)


class TestNamedKernels:
    @pytest.mark.parametrize("name", sorted(NAMED_KERNELS))
    def test_kernel_verifies(self, name):
        verify_loop(make_kernel(name))

    def test_fresh_instances(self):
        a = make_kernel("daxpy")
        b = make_kernel("daxpy")
        assert a.ops[0].op_id != b.ops[0].op_id
        assert a.ops[0].dest.rid != b.ops[0].dest.rid

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            make_kernel("nope")

    def test_recurrence_kernels_have_recurrences(self):
        # (iprefix's integer-add recurrence has latency 1, so RecII == 1)
        for name in ("dot", "lfk5_tridiag", "lfk11_psum", "rec_d2"):
            ddg = build_loop_ddg(make_kernel(name))
            assert recurrence_ii(ddg) > 1, name

    def test_parallel_kernels_have_none(self):
        for name in ("daxpy", "fir5", "lfk12_fdiff", "cmul", "daxpy4"):
            ddg = build_loop_ddg(make_kernel(name))
            assert recurrence_ii(ddg) == 1, name

    def test_xpos_example_block_matches_figure1(self):
        from repro.workloads.kernels import xpos_example_block

        block = xpos_example_block()
        assert len(block) == 11
        mnemonics = [op.opcode.value for op in block.ops]
        assert mnemonics.count("load") == 4
        assert mnemonics.count("mul") == 3
        assert mnemonics.count("add") == 2
        assert mnemonics.count("div") == 1
        assert mnemonics.count("store") == 1


class TestSyntheticGenerator:
    def test_deterministic_per_seed(self):
        from repro.ir.printer import format_loop

        a = SyntheticLoopGenerator(42).generate("x", PROFILES["parallel"])
        b = SyntheticLoopGenerator(42).generate("x", PROFILES["parallel"])
        assert format_loop(a) == format_loop(b)

    def test_different_seeds_differ(self):
        from repro.ir.printer import format_loop

        a = SyntheticLoopGenerator(1).generate("x", PROFILES["parallel"])
        b = SyntheticLoopGenerator(2).generate("x", PROFILES["parallel"])
        assert format_loop(a) != format_loop(b)

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_profiles_generate_verified_loops(self, profile):
        gen = SyntheticLoopGenerator(7)
        for i in range(20):
            loop = gen.generate(f"l{i}", PROFILES[profile])
            verify_loop(loop)

    def test_recurrence_profile_produces_recurrences(self):
        gen = SyntheticLoopGenerator(3)
        found = 0
        for i in range(20):
            loop = gen.generate(f"r{i}", PROFILES["recurrence"])
            if recurrence_ii(build_loop_ddg(loop)) > 2:
                found += 1
        assert found >= 10

    def test_depths_in_profile_choices(self):
        profile = LoopProfile(
            name="d", chains=(1, 1), loads_per_chain=(1, 1),
            extra_ops_per_chain=(1, 1), depth_choices=(3,),
        )
        loop = SyntheticLoopGenerator(0).generate("d", profile)
        assert loop.depth == 3

    def test_mixture_weights_sum_to_one(self):
        total = sum(w for _p, w in default_profile_mixture())
        assert total == pytest.approx(1.0)


class TestCorpus:
    def test_size_and_determinism(self):
        from repro.ir.printer import format_loop

        loops = spec95_corpus()
        again = spec95_corpus()
        assert len(loops) == CORPUS_SIZE == 211
        assert [l.name for l in loops] == [l.name for l in again]
        assert format_loop(loops[50]) == format_loop(again[50])

    def test_contains_the_frozen_kernel_set(self):
        from repro.workloads.corpus import CORPUS_KERNELS

        names = {l.name for l in spec95_corpus()}
        # corpus composition is frozen; newer library kernels stay out
        assert {NAMED_KERNELS[k]().name for k in CORPUS_KERNELS} <= names
        assert set(CORPUS_KERNELS) <= set(NAMED_KERNELS)

    def test_small_corpus_prefix(self):
        loops = spec95_corpus(n=10)
        assert len(loops) == 10

    def test_all_loops_verify(self):
        for loop in spec95_corpus():
            verify_loop(loop)

    def test_summary(self):
        loops = spec95_corpus(n=40)
        s = corpus_summary(loops)
        assert s.n_loops == 40
        assert s.min_ops >= 1
        assert s.max_ops >= s.min_ops
        assert s.n_with_recurrence > 0
        assert "loops" in str(s)

    def test_ipc_calibration_band(self):
        """The headline calibration target: mean ideal IPC ~ 8.6 (Table 1)."""
        import statistics

        from repro.machine.presets import ideal_machine
        from repro.sched.modulo.scheduler import modulo_schedule

        m = ideal_machine()
        ipcs = []
        for loop in spec95_corpus():
            ddg = build_loop_ddg(loop)
            ipcs.append(modulo_schedule(loop, ddg, m).ipc)
        mean = statistics.mean(ipcs)
        assert 8.2 <= mean <= 9.0, mean
