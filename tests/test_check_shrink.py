"""Greedy reproducer minimization."""

from __future__ import annotations

import pytest

from repro.check.oracles import run_oracles, subject_from_result
from repro.check.shrink import (
    drop_operation,
    render_reproducer,
    shrink_loop,
    with_trip_count,
)
from repro.core.pipeline import PipelineConfig, compile_loop
from repro.ir.parser import parse_loop
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from tests.test_check_oracles import _buggy_expand_pipeline


def test_drop_operation_orphans_become_live_ins(daxpy_loop):
    # dropping the fmul leaves fadd reading f3, which must become a live-in
    idx = next(
        i for i, op in enumerate(daxpy_loop.ops) if op.opcode.value == "fmul"
    )
    smaller = drop_operation(daxpy_loop, idx)
    assert len(smaller.ops) == len(daxpy_loop.ops) - 1
    assert "f3" in {r.name for r in smaller.live_in}
    # fa is no longer read by anything -> dropped from live-ins
    assert "fa" not in {r.name for r in smaller.live_in}


def test_drop_operation_drops_orphaned_live_outs(dot_loop):
    idx = next(
        i for i, op in enumerate(dot_loop.ops) if op.opcode.value == "fadd"
    )
    smaller = drop_operation(dot_loop, idx)
    assert "f4" not in {r.name for r in smaller.live_out}


def test_drop_last_operation_returns_none(dot_loop):
    current = dot_loop
    while len(current.ops) > 1:
        current = drop_operation(current, len(current.ops) - 1)
    assert drop_operation(current, 0) is None


def test_with_trip_count_preserves_body(daxpy_loop):
    copy = with_trip_count(daxpy_loop, 3)
    assert copy.trip_count_hint == 3
    assert len(copy.ops) == len(daxpy_loop.ops)
    assert copy is not daxpy_loop


def test_shrink_requires_reproducing_input(daxpy_loop):
    with pytest.raises(ValueError):
        shrink_loop(daxpy_loop, lambda loop: False)


def test_shrink_to_single_essential_op(daxpy_loop):
    # "fails whenever the loop still contains an fmul" minimizes to 1 op
    def predicate(loop):
        return any(op.opcode.value == "fmul" for op in loop.ops)

    result = shrink_loop(daxpy_loop, predicate)
    assert result.final_ops == 1
    assert result.loop.ops[0].opcode.value == "fmul"
    assert result.trip_count == 1
    assert result.original_ops == len(daxpy_loop.ops)


def test_shrink_treats_predicate_crash_as_non_reproducing(daxpy_loop):
    # the predicate explodes on any loop smaller than the original: the
    # shrinker must keep the original instead of propagating the crash
    def fragile(loop):
        if len(loop.ops) < len(daxpy_loop.ops):
            raise RuntimeError("different bug")
        return True

    result = shrink_loop(daxpy_loop, fragile)
    assert result.final_ops == len(daxpy_loop.ops)


def test_shrink_respects_attempt_budget(daxpy_loop):
    result = shrink_loop(
        daxpy_loop, lambda loop: True, max_attempts=3
    )
    assert result.attempts <= 3


def test_render_reproducer_round_trips_through_parser(daxpy_loop):
    def predicate(loop):
        return any(op.opcode.value == "fmul" for op in loop.ops)

    result = shrink_loop(daxpy_loop, predicate)
    text = render_reproducer(
        result, "phase_partition", "detail line", "2 Clusters / Embedded", seed=7
    )
    assert "# repro check reproducer" in text
    reparsed = parse_loop(text)
    assert len(reparsed.ops) == result.final_ops


def test_reintroduced_expansion_bug_shrinks_to_tiny_reproducer(
    daxpy_loop, monkeypatch
):
    """Acceptance check: with the old ``expand_pipeline`` boundary bug put
    back, the phase oracle fails and the shrinker commits a reproducer of
    at most 6 operations."""
    monkeypatch.setattr(
        "repro.check.oracles.expand_pipeline", _buggy_expand_pipeline
    )
    machine = paper_machine(2, CopyModel.EMBEDDED)
    config = PipelineConfig()

    def phase_oracle_fails(loop):
        result = compile_loop(loop, machine, config)
        violations = run_oracles(
            subject_from_result(result), only=("phase_partition",)
        )
        return bool(violations)

    assert phase_oracle_fails(daxpy_loop), "bug not reintroduced?"
    shrunk = shrink_loop(daxpy_loop, phase_oracle_fails)
    assert shrunk.final_ops <= 6
    text = render_reproducer(
        shrunk, "phase_partition", "reintroduced boundary bug", "2 Clusters / Embedded"
    )
    assert parse_loop(text).name == daxpy_loop.name
