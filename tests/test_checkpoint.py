"""Checkpoint/resume: JSONL cells, interruption, byte-identical merge."""

import json

import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.results import LoopFailure
from repro.evalx.checkpoint import (
    Cell,
    CheckpointLog,
    CheckpointMismatch,
    run_fingerprint,
)
from repro.evalx.export import run_to_csv
from repro.evalx.figures import compute_figure
from repro.evalx.runner import (
    PAPER_CONFIG_ORDER,
    config_label,
    run_evaluation,
)
from repro.evalx.table1 import compute_table1
from repro.evalx.table2 import compute_table2
from repro.ir.block import BasicBlock, Loop
from repro.workloads.corpus import spec95_corpus

CONFIG = PipelineConfig(run_regalloc=False)
LABELS = [config_label(n, m) for n, m in PAPER_CONFIG_ORDER]


def rendered(run) -> str:
    """Everything presentation-grade: tables + figures + CSV."""
    parts = [compute_table1(run).format(), compute_table2(run).format()]
    parts.extend(compute_figure(run, n).format() for n in (2, 4, 8))
    parts.append(run_to_csv(run))
    return "\n".join(parts)


def interrupt_after(monkeypatch, n_cells: int):
    """Make the runner's compile raise KeyboardInterrupt after n calls."""
    import repro.core.pipeline as pipeline_mod

    real = pipeline_mod.compile_loop
    calls = {"n": 0}

    def bomb(loop, machine, config, cache=None, **obs):
        calls["n"] += 1
        if calls["n"] > n_cells:
            raise KeyboardInterrupt
        return real(loop, machine, config, cache=cache, **obs)

    monkeypatch.setattr("repro.evalx.runner.compile_loop", bomb)
    return calls


class TestCellType:
    def test_metric_cell_roundtrip(self):
        loops = spec95_corpus(n=1)
        run = run_evaluation(loops=loops, config=CONFIG,
                             configs=(PAPER_CONFIG_ORDER[0],))
        (label,) = run.per_config
        cell = Cell(loop_index=0, config=label, metrics=run.per_config[label][0])
        again = Cell.from_json(json.loads(json.dumps(cell.to_json())))
        assert again == cell and again.ok

    def test_failure_cell_roundtrip(self):
        failure = LoopFailure(config="c", loop_name="lp", error="boom",
                              kind="timeout", attempts=2)
        cell = Cell(loop_index=3, config="c", failure=failure)
        again = Cell.from_json(json.loads(json.dumps(cell.to_json())))
        assert again == cell and not again.ok

    def test_cell_holds_exactly_one_payload(self):
        with pytest.raises(ValueError):
            Cell(loop_index=0, config="c")

    def test_unknown_failure_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            LoopFailure(config="c", loop_name="lp", error="e", kind="meteor")


class TestHeaderValidation:
    def test_fingerprint_sensitive_to_corpus_configs_pipeline(self):
        loops = spec95_corpus(n=3)
        base = run_fingerprint(loops, LABELS, CONFIG)
        assert run_fingerprint(loops[:2], LABELS, CONFIG)["corpus"] != base["corpus"]
        assert run_fingerprint(loops, LABELS[:1], CONFIG)["configs"] != base["configs"]
        other = PipelineConfig(run_regalloc=True)
        assert run_fingerprint(loops, LABELS, other)["pipeline"] != base["pipeline"]

    def test_resume_on_missing_path_starts_fresh(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointLog.resume(path, spec95_corpus(n=2), LABELS, CONFIG) as log:
            assert log.cells == {}
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "header" and first["n_loops"] == 2

    def test_mismatched_corpus_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointLog.fresh(path, spec95_corpus(n=3), LABELS, CONFIG).close()
        with pytest.raises(CheckpointMismatch, match="different run"):
            CheckpointLog.resume(path, spec95_corpus(n=4), LABELS, CONFIG)

    def test_mismatched_pipeline_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        loops = spec95_corpus(n=3)
        CheckpointLog.fresh(path, loops, LABELS, CONFIG).close()
        with pytest.raises(CheckpointMismatch, match="pipeline"):
            CheckpointLog.resume(path, loops, LABELS,
                                 PipelineConfig(run_regalloc=True))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("")
        with pytest.raises(CheckpointMismatch, match="empty"):
            CheckpointLog.resume(path, spec95_corpus(n=2), LABELS, CONFIG)

    def test_truncated_tail_line_ignored(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        loops = spec95_corpus(n=2)
        with CheckpointLog.fresh(path, loops, LABELS, CONFIG) as log:
            failure = LoopFailure(config=LABELS[0], loop_name=loops[0].name,
                                  error="boom")
            log.record(Cell(loop_index=0, config=LABELS[0], failure=failure))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "cell", "loop_index": 1, "conf')  # killed mid-write
        with CheckpointLog.resume(path, loops, LABELS, CONFIG) as log:
            assert list(log.cells) == [(0, LABELS[0])]

    def test_runner_cross_checks_checkpoint_header(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointLog.fresh(path, spec95_corpus(n=3), LABELS, CONFIG) as log:
            with pytest.raises(CheckpointMismatch, match="does not describe"):
                run_evaluation(loops=spec95_corpus(n=4), config=CONFIG,
                               checkpoint=log)


class TestResume:
    def test_interrupted_serial_run_resumes_byte_identical(
        self, tmp_path, monkeypatch
    ):
        loops = spec95_corpus(n=5)
        clean = run_evaluation(loops=loops, config=CONFIG)

        path = tmp_path / "ck.jsonl"
        interrupt_after(monkeypatch, 7)
        with CheckpointLog.fresh(path, loops, LABELS, CONFIG) as log:
            with pytest.raises(KeyboardInterrupt):
                run_evaluation(loops=loops, config=CONFIG, checkpoint=log)
        monkeypatch.undo()

        with CheckpointLog.resume(path, loops, LABELS, CONFIG) as log:
            assert len(log.cells) == 7  # flushed before the "crash"
            resumed = run_evaluation(loops=loops, config=CONFIG, checkpoint=log)
        assert resumed.resumed_cells == 7
        assert resumed.per_config == clean.per_config
        assert resumed.failures == clean.failures
        assert rendered(resumed) == rendered(clean)

    def test_interrupted_run_resumes_in_parallel(self, tmp_path, monkeypatch):
        loops = spec95_corpus(n=4)
        clean = run_evaluation(loops=loops, config=CONFIG)

        path = tmp_path / "ck.jsonl"
        interrupt_after(monkeypatch, 9)
        with CheckpointLog.fresh(path, loops, LABELS, CONFIG) as log:
            with pytest.raises(KeyboardInterrupt):
                run_evaluation(loops=loops, config=CONFIG, checkpoint=log)
        monkeypatch.undo()

        with CheckpointLog.resume(path, loops, LABELS, CONFIG) as log:
            resumed = run_evaluation(loops=loops, config=CONFIG, checkpoint=log,
                                     jobs=2)
        assert resumed.resumed_cells == 9
        assert rendered(resumed) == rendered(clean)

    def test_parallel_checkpoint_resumes_serially(self, tmp_path, monkeypatch):
        loops = spec95_corpus(n=4)
        clean = run_evaluation(loops=loops, config=CONFIG)

        path = tmp_path / "ck.jsonl"
        with CheckpointLog.fresh(path, loops, LABELS, CONFIG) as log:
            run_evaluation(loops=loops, config=CONFIG, checkpoint=log, jobs=2)

        # a complete checkpoint needs zero compilations to reproduce the run
        def never(*_a, **_k):
            raise AssertionError("resume of a complete checkpoint recompiled")

        monkeypatch.setattr("repro.evalx.runner.compile_loop", never)
        with CheckpointLog.resume(path, loops, LABELS, CONFIG) as log:
            assert len(log.cells) == len(loops) * len(LABELS)
            resumed = run_evaluation(loops=loops, config=CONFIG, checkpoint=log)
        assert resumed.resumed_cells == len(loops) * len(LABELS)
        assert rendered(resumed) == rendered(clean)

    def test_failures_roundtrip_through_checkpoint(self, tmp_path, monkeypatch):
        broken = Loop(name="zz_broken", body=BasicBlock("zz_broken"))
        loops = spec95_corpus(n=3) + [broken]
        clean = run_evaluation(loops=loops, config=CONFIG)
        assert clean.failures  # the empty loop fails everywhere

        path = tmp_path / "ck.jsonl"
        interrupt_after(monkeypatch, 10)
        with CheckpointLog.fresh(path, loops, LABELS, CONFIG) as log:
            with pytest.raises(KeyboardInterrupt):
                run_evaluation(loops=loops, config=CONFIG, checkpoint=log)
        monkeypatch.undo()

        with CheckpointLog.resume(path, loops, LABELS, CONFIG) as log:
            resumed = run_evaluation(loops=loops, config=CONFIG, checkpoint=log)
        assert resumed.failures == clean.failures
        assert rendered(resumed) == rendered(clean)
