"""Tests for DDG construction: register flow, memory dependences, distances."""


from repro.ddg.builder import build_block_ddg, build_loop_ddg
from repro.ddg.dependence import DepKind
from repro.ir.builder import LoopBuilder


def edges_of(ddg, kind=None):
    return [e for e in ddg.edges() if kind is None or e.kind is kind]


class TestRegisterFlow:
    def test_same_iteration_flow(self, daxpy_loop):
        ddg = build_loop_ddg(daxpy_loop)
        flows = edges_of(ddg, DepKind.FLOW)
        # f1->f3, f2->f4, f3->f4, f4->store
        assert len(flows) == 4
        assert all(e.distance == 0 for e in flows)

    def test_flow_delay_is_source_latency(self, daxpy_loop):
        ddg = build_loop_ddg(daxpy_loop)
        for e in edges_of(ddg, DepKind.FLOW):
            if e.reg.name in ("f1", "f2"):
                assert e.delay == 2  # load latency

    def test_accumulator_self_edge(self, dot_loop):
        ddg = build_loop_ddg(dot_loop)
        self_edges = [
            e for e in ddg.edges() if e.src.op_id == e.dst.op_id
        ]
        assert len(self_edges) == 1
        (e,) = self_edges
        assert e.kind is DepKind.FLOW and e.distance == 1 and e.delay == 2

    def test_use_before_def_is_carried(self):
        b = LoopBuilder("ubd")
        b.fstore("f1", "out")      # use before def -> previous iteration
        b.fload("f1", "x")
        loop = b.build()
        ddg = build_loop_ddg(loop)
        flows = edges_of(ddg, DepKind.FLOW)
        assert len(flows) == 1 and flows[0].distance == 1

    def test_live_in_has_no_edge(self, daxpy_loop):
        ddg = build_loop_ddg(daxpy_loop)
        assert all(
            e.reg is None or e.reg.name != "fa" for e in ddg.edges()
        )


class TestMemoryDependences:
    def test_store_load_recurrence(self, memrec_loop):
        ddg = build_loop_ddg(memrec_loop)
        mem_flows = edges_of(ddg, DepKind.MEM_FLOW)
        assert len(mem_flows) == 1
        (e,) = mem_flows
        assert e.distance == 1
        assert e.delay == 4  # store latency

    def test_same_iteration_store_then_load(self):
        b = LoopBuilder("sl")
        b.fload("f1", "x")
        b.fstore("f1", "y")
        b.fload("f2", "y")  # reads what the store just wrote
        b.fstore("f2", "z")
        loop = b.build()
        ddg = build_loop_ddg(loop)
        mem_flows = edges_of(ddg, DepKind.MEM_FLOW)
        assert any(e.distance == 0 for e in mem_flows)

    def test_load_then_store_is_anti(self):
        b = LoopBuilder("anti")
        b.fload("f1", "y")
        b.fmul("f2", "f1", "f1")
        b.fstore("f2", "y")  # same location, after the load
        loop = b.build()
        ddg = build_loop_ddg(loop)
        antis = edges_of(ddg, DepKind.MEM_ANTI)
        assert len(antis) == 1 and antis[0].distance == 0 and antis[0].delay == 1

    def test_store_store_output_dep(self):
        b = LoopBuilder("oo")
        b.fload("f1", "x")
        b.fstore("f1", "y")
        b.fload("f2", "z")
        b.fstore("f2", "y")
        loop = b.build()
        ddg = build_loop_ddg(loop)
        outs = edges_of(ddg, DepKind.MEM_OUTPUT)
        assert any(e.distance == 0 for e in outs)

    def test_scalar_store_self_output_dep(self):
        b = LoopBuilder("ss")
        b.fload("f1", "x")
        b.fstore("f1", "acc", scalar=True)
        loop = b.build()
        ddg = build_loop_ddg(loop)
        outs = edges_of(ddg, DepKind.MEM_OUTPUT)
        assert any(
            e.src.op_id == e.dst.op_id and e.distance == 1 for e in outs
        )

    def test_read_read_no_dep(self):
        b = LoopBuilder("rr")
        b.fload("f1", "x")
        b.fload("f2", "x")
        b.fstore("f1", "o1")
        b.fstore("f2", "o2")
        loop = b.build()
        ddg = build_loop_ddg(loop)
        assert not [e for e in ddg.edges() if e.kind.is_memory and e.src.reads_mem and e.dst.reads_mem]

    def test_disjoint_arrays_no_dep(self):
        b = LoopBuilder("dj")
        b.fload("f1", "x")
        b.fstore("f1", "y")
        b.fload("f2", "z", offset=-1)
        b.fstore("f2", "w")
        loop = b.build()
        ddg = build_loop_ddg(loop)
        assert not edges_of(ddg, DepKind.MEM_FLOW)

    def test_distance_two_recurrence(self):
        b = LoopBuilder("d2")
        b.fload("f1", "x", offset=-2)
        b.fstore("f1", "x")
        loop = b.build()
        ddg = build_loop_ddg(loop)
        (e,) = edges_of(ddg, DepKind.MEM_FLOW)
        assert e.distance == 2


class TestBlockDDG:
    def test_block_is_acyclic_distance_zero(self):
        b = LoopBuilder("blk", depth=0)
        b.load("r1", "a", scalar=True)
        b.add("r2", "r1", 1)
        b.store("r2", "a", scalar=True)
        block = b.build_block()
        ddg = build_block_ddg(block)
        assert all(e.distance == 0 for e in ddg.edges())
        ddg.topological_order()  # must not raise

    def test_block_scalar_anti_dep(self):
        b = LoopBuilder("blk2", depth=0)
        b.load("r1", "a", scalar=True)
        b.store("r1", "a", scalar=True)
        ddg = build_block_ddg(b.build_block())
        assert any(e.kind is DepKind.MEM_ANTI for e in ddg.edges())
