"""Round-trip and error tests for the IR printer and parser."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.parser import IRParseError, parse_loop
from repro.ir.printer import format_loop, format_operation


def sample_loop():
    b = LoopBuilder("sample", depth=2, trip_count_hint=5)
    b.fload("f1", "x")
    b.fload("f2", "y", offset=1)
    b.fmul("f3", "f1", "fa")
    b.fadd("f4", "f3", "f2")
    b.fdiv("f5", "f4", 2.0)
    b.fstore("f5", "y")
    b.load("r1", "idx", scalar=True)
    b.add("r2", "r1", 4)
    b.store("r2", "idx", scalar=True)
    b.live_in("fa")
    b.live_out("f4")
    return b.build()


class TestPrinter:
    def test_operation_format(self):
        loop = sample_loop()
        texts = [format_operation(op) for op in loop.ops]
        assert texts[0] == "fload f1, x[i]"
        assert texts[1] == "fload f2, y[i+1]"
        assert texts[2] == "fmul f3, f1, fa"
        assert "fdiv f5, f4, 2.0" in texts
        assert "load r1, idx" in texts
        assert "store r2, idx" in texts

    def test_cluster_annotation(self):
        loop = sample_loop()
        loop.ops[0].cluster = 3
        assert format_operation(loop.ops[0]).endswith("@c3")

    def test_loop_format_contains_liveness(self):
        text = format_loop(sample_loop())
        assert "live_in fa" in text
        assert "live_out f4" in text
        assert text.startswith("loop sample depth=2 trip=5")
        assert text.endswith("end")


class TestRoundTrip:
    def test_parse_of_printed_loop(self):
        original = sample_loop()
        parsed = parse_loop(format_loop(original))
        assert parsed.name == original.name
        assert parsed.depth == original.depth
        assert parsed.trip_count_hint == original.trip_count_hint
        assert len(parsed.ops) == len(original.ops)
        for a, b in zip(original.ops, parsed.ops):
            assert a.opcode is b.opcode
            assert (a.dest is None) == (b.dest is None)
            if a.dest is not None:
                assert a.dest.name == b.dest.name
            assert a.mem == b.mem
        assert {r.name for r in parsed.live_in} == {r.name for r in original.live_in}
        assert {r.name for r in parsed.live_out} == {r.name for r in original.live_out}

    def test_double_round_trip_stable(self):
        once = format_loop(parse_loop(format_loop(sample_loop())))
        twice = format_loop(parse_loop(once))
        assert once == twice

    def test_cluster_round_trip(self):
        loop = sample_loop()
        loop.ops[0].cluster = 2
        parsed = parse_loop(format_loop(loop))
        assert parsed.ops[0].cluster == 2


class TestParserErrors:
    def test_empty_input(self):
        with pytest.raises(IRParseError):
            parse_loop("")

    def test_missing_end(self):
        with pytest.raises(IRParseError):
            parse_loop("loop x\n  fload f1, a[i]")

    def test_bad_header(self):
        with pytest.raises(IRParseError):
            parse_loop("notaloop x\nend")

    def test_unknown_opcode(self):
        with pytest.raises(IRParseError):
            parse_loop("loop x\n  frobnicate f1, f2\nend")

    def test_bad_memref(self):
        with pytest.raises(IRParseError):
            parse_loop("loop x\n  fload f1, a[j]\nend")

    def test_store_missing_memref(self):
        with pytest.raises(IRParseError):
            parse_loop("loop x\n  fstore\nend")

    def test_comments_and_blanks_ignored(self):
        loop = parse_loop(
            """
            loop c
              # a comment
              fload f1, a[i]

              fstore f1, b[i]
            end
            """
        )
        assert len(loop.ops) == 2
