"""Tests for degradation diagnosis, critical-cycle extraction and export."""

import csv
import io
import json

import pytest

from repro.core.pipeline import PipelineConfig, compile_loop
from repro.ddg.analysis import critical_cycle, recurrence_ii
from repro.ddg.builder import build_loop_ddg
from repro.evalx.diagnose import DegradationCause, diagnose
from repro.evalx.export import CSV_FIELDS, run_to_csv, run_to_json
from repro.evalx.runner import run_evaluation
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.workloads.corpus import spec95_corpus
from repro.workloads.kernels import make_kernel


class TestCriticalCycle:
    def test_acyclic_has_no_cycle(self, daxpy_loop):
        assert critical_cycle(build_loop_ddg(daxpy_loop)) == []

    def test_memory_recurrence_cycle(self, memrec_loop):
        ddg = build_loop_ddg(memrec_loop)
        cycle = critical_cycle(ddg)
        # load -> fmul -> store (-> load): exactly the three recurrence ops
        assert len(cycle) == 3
        kinds = {op.opcode.value for op in cycle}
        assert kinds == {"fload", "fmul", "fstore"}

    def test_cycle_ratio_matches_recii(self, memrec_loop):
        ddg = build_loop_ddg(memrec_loop)
        cycle = critical_cycle(ddg)
        cycle_ids = {op.op_id for op in cycle}
        delay = dist = 0
        for e in ddg.edges():
            if e.src.op_id in cycle_ids and e.dst.op_id in cycle_ids:
                delay += e.delay
                dist += e.distance
        assert dist > 0
        assert -(-delay // dist) == recurrence_ii(ddg)

    def test_accumulator_self_cycle(self, dot_loop):
        cycle = critical_cycle(build_loop_ddg(dot_loop))
        assert len(cycle) == 1
        assert cycle[0].opcode.value == "fadd"


class TestDiagnose:
    def test_zero_degradation_is_none(self):
        m = paper_machine(2, CopyModel.EMBEDDED)
        result = compile_loop(make_kernel("daxpy"), m, PipelineConfig(run_regalloc=False))
        d = diagnose(result)
        if result.metrics.zero_degradation:
            assert d.cause is DegradationCause.NONE

    def test_single_bank_diagnosed_as_resources(self):
        m = paper_machine(8, CopyModel.EMBEDDED)
        result = compile_loop(
            make_kernel("daxpy4"), m,
            PipelineConfig(partitioner="single", run_regalloc=False),
        )
        d = diagnose(result)
        assert d.cause is DegradationCause.RESOURCES
        assert d.cluster_loads[0] == len(make_kernel("daxpy4").ops)

    def test_recurrence_lengthening_detected(self):
        """Force a copy onto lfk5's critical recurrence by splitting the
        cycle across banks via precoloring."""
        loop = make_kernel("lfk5_tridiag")
        f = loop.factory
        m = paper_machine(2, CopyModel.EMBEDDED)
        result = compile_loop(
            loop, m,
            PipelineConfig(
                precolored={f.get("f4"): 0, f.get("f5"): 1}, run_regalloc=False
            ),
        )
        d = diagnose(result)
        assert d.cause is DegradationCause.RECURRENCE
        assert d.copies_on_critical_cycle
        assert "fcopy" in d.copies_on_critical_cycle[0]

    def test_format_mentions_cause(self):
        m = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(make_kernel("fir5"), m, PipelineConfig(run_regalloc=False))
        text = diagnose(result).format()
        assert "cause:" in text and "II:" in text


class TestExport:
    @pytest.fixture(scope="class")
    def small_run(self):
        return run_evaluation(
            loops=spec95_corpus(n=12),
            config=PipelineConfig(run_regalloc=False),
            configs=((2, CopyModel.EMBEDDED), (2, CopyModel.COPY_UNIT)),
        )

    def test_csv_structure(self, small_run):
        text = run_to_csv(small_run)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 24  # 12 loops x 2 configs
        assert set(rows[0]) == set(CSV_FIELDS)
        for row in rows:
            assert float(row["normalized_kernel"]) >= 90.0
            assert row["bucket"]

    def test_json_structure(self, small_run):
        doc = json.loads(run_to_json(small_run))
        assert "table1" in doc and "table2" in doc
        assert doc["table1"]["ideal_ipc"] > 0
        assert "2/embedded" in doc["table2"]["arithmetic"]
        assert "2" in doc["figures"]
        assert len(doc["loops"]) == 2
        assert doc["failures"] == []

    def test_json_round_trips(self, small_run):
        assert json.loads(run_to_json(small_run)) == json.loads(run_to_json(small_run))


class TestPipelineWithSwing:
    def test_swing_scheduler_through_pipeline(self, clustered_machine):
        loop = make_kernel("lfk1_hydro")
        result = compile_loop(
            loop, clustered_machine,
            PipelineConfig(scheduler="swing", run_regalloc=False, run_simulation=True),
        )
        assert result.metrics.sim_checked
        assert result.metrics.partitioned_ii >= 1
