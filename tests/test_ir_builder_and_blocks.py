"""Unit tests for repro.ir.builder, repro.ir.block and repro.ir.function."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.function import Function
from repro.ir.types import DataType, Immediate


class TestLoopBuilder:
    def test_register_dtype_inferred_from_name(self):
        b = LoopBuilder("t")
        assert b.reg("r1").dtype is DataType.INT
        assert b.reg("f1").dtype is DataType.FLOAT

    def test_numeric_operands_become_immediates(self):
        b = LoopBuilder("t")
        assert b.operand(3) == Immediate(3, DataType.INT)
        imm = b.operand(2.5)
        assert imm.dtype is DataType.FLOAT

    def test_auto_live_in_detection(self):
        b = LoopBuilder("t")
        b.fload("f1", "x")
        b.fmul("f2", "f1", "fa")  # fa never defined -> live-in
        b.fstore("f2", "y")
        loop = b.build()
        assert any(r.name == "fa" for r in loop.live_in)

    def test_explicit_live_out(self):
        b = LoopBuilder("t")
        b.fload("f1", "x")
        b.fadd("f2", "f2", "f1")
        b.live_out("f2")
        loop = b.build()
        assert any(r.name == "f2" for r in loop.live_out)

    def test_build_block_has_depth(self):
        b = LoopBuilder("t", depth=2)
        b.load("r1", "x")
        block = b.build_block()
        assert block.depth == 2
        assert len(block) == 1


class TestLoopStructure:
    def test_definition_of(self):
        b = LoopBuilder("t")
        b.fload("f1", "x")
        b.fmul("f2", "f1", "f1")
        loop = b.build()
        op = loop.definition_of(loop.factory.get("f2"))
        assert op is not None and op.dest.name == "f2"
        assert loop.definition_of(loop.factory.get("f1")) is not None

    def test_registers_includes_boundary(self):
        b = LoopBuilder("t")
        b.fload("f1", "x")
        b.fmul("f2", "f1", "fa")
        b.fstore("f2", "y")
        loop = b.build()
        names = {r.name for r in loop.registers()}
        assert {"f1", "f2", "fa"} <= names

    def test_defined_registers(self):
        b = LoopBuilder("t")
        b.fload("f1", "x")
        b.fstore("f1", "y")
        loop = b.build()
        assert {r.name for r in loop.defined_registers()} == {"f1"}

    def test_block_index_of(self):
        b = LoopBuilder("t")
        op1 = b.fload("f1", "x")
        op2 = b.fstore("f1", "y")
        loop = b.build()
        assert loop.body.index_of(op1) == 0
        assert loop.body.index_of(op2) == 1
        with pytest.raises(ValueError):
            loop.body.index_of(op1.clone())


class TestFunction:
    def test_blocks_and_lookup(self):
        fn = Function("f")
        b = LoopBuilder("b0", depth=0)
        b.load("r1", "x")
        fn.add_block(b.build_block())
        assert fn.block("b0.block").depth == 0
        assert fn.n_operations == 1
        with pytest.raises(KeyError):
            fn.block("nope")

    def test_duplicate_block_rejected(self):
        fn = Function("f")
        b = LoopBuilder("b0", depth=0)
        b.load("r1", "x")
        blk = b.build_block()
        fn.add_block(blk)
        with pytest.raises(ValueError):
            fn.add_block(blk)
