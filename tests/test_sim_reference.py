"""Tests for the sequential reference interpreter."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.sim.reference import run_reference
from repro.sim.values import seed_memory, seed_register


class TestReferenceSemantics:
    def test_store_writes_indexed_cells(self):
        b = LoopBuilder("w")
        b.fload("f1", "x")
        b.fstore("f1", "y")
        loop = b.build()
        state = run_reference(loop, trip_count=3)
        for k in range(3):
            assert state.memory[("y", k)] == state.memory[("x", k)]
        assert state.store_count == 3

    def test_offsets_shift_addresses(self):
        b = LoopBuilder("off")
        b.fload("f1", "x", offset=2)
        b.fstore("f1", "y")
        loop = b.build()
        state = run_reference(loop, trip_count=2)
        assert state.memory[("y", 0)] == state.memory[("x", 2)]
        assert state.memory[("y", 1)] == state.memory[("x", 3)]

    def test_accumulator_sums(self):
        b = LoopBuilder("acc")
        b.fload("f1", "x")
        b.fadd("f2", "f2", "f1")
        b.live_out("f2")
        loop = b.build()
        state = run_reference(loop, trip_count=4)
        f2 = loop.factory.get("f2")
        expected = seed_register(f2) + sum(
            seed_memory("x", k, as_float=True) for k in range(4)
        )
        assert state.registers[f2.rid] == pytest.approx(expected)

    def test_use_before_def_reads_previous_iteration(self):
        b = LoopBuilder("ubd")
        b.fstore("f1", "out")   # stores PREVIOUS iteration's f1
        b.fload("f1", "x")
        loop = b.build()
        state = run_reference(loop, trip_count=3)
        f1 = loop.factory.get("f1")
        assert state.memory[("out", 0)] == seed_register(f1)
        assert state.memory[("out", 1)] == state.memory[("x", 0)]
        assert state.memory[("out", 2)] == state.memory[("x", 1)]

    def test_memory_recurrence(self, memrec_loop):
        state = run_reference(memrec_loop, trip_count=3)
        # x[k] = x[k-1] * b[k]
        x_m1 = seed_memory("x", -1, as_float=True)
        b0 = state.memory[("b", 0)]
        assert state.memory[("x", 0)] == pytest.approx(x_m1 * b0)
        assert state.memory[("x", 1)] == pytest.approx(
            state.memory[("x", 0)] * state.memory[("b", 1)]
        )

    def test_scalar_memref_single_cell(self):
        b = LoopBuilder("sc")
        b.load("r1", "cnt", scalar=True)
        b.add("r2", "r1", 1)
        b.store("r2", "cnt", scalar=True)
        loop = b.build()
        state = run_reference(loop, trip_count=5)
        assert state.memory[("cnt", 0)] == seed_memory("cnt", 0, as_float=False) + 5

    def test_int_ops(self):
        b = LoopBuilder("int")
        b.load("r1", "v")
        b.shl("r2", "r1", 2)
        b.and_("r3", "r2", 12)
        b.store("r3", "o")
        loop = b.build()
        state = run_reference(loop, trip_count=1)
        v0 = seed_memory("v", 0, as_float=False)
        assert state.memory[("o", 0)] == (v0 << 2) & 12

    def test_select_and_cmp(self):
        b = LoopBuilder("sel")
        b.load("r1", "v")
        b.cmp("r2", "r1", 3)
        b.select("r3", "r2", "r1", 0)
        b.store("r3", "o")
        loop = b.build()
        state = run_reference(loop, trip_count=1)
        v0 = seed_memory("v", 0, as_float=False)
        assert state.memory[("o", 0)] == (v0 if v0 > 3 else 0)

    def test_division_guards(self):
        b = LoopBuilder("div")
        b.load("r1", "v")
        b.sub("r2", "r1", "r1")       # always 0
        b.div("r3", "r1", "r2")       # division by zero -> 0 by contract
        b.store("r3", "o")
        loop = b.build()
        state = run_reference(loop, trip_count=1)
        assert state.memory[("o", 0)] == 0

    def test_initial_registers_override(self, dot_loop):
        f4 = dot_loop.factory.get("f4")
        s1 = run_reference(dot_loop, trip_count=2, initial_registers={f4.rid: 0.0})
        s2 = run_reference(dot_loop, trip_count=2)
        assert s1.registers[f4.rid] != s2.registers[f4.rid]

    def test_spill_slot_seeding_matches_register(self):
        assert seed_memory("__spill_f7", 0, as_float=True) == seed_register(
            type("R", (), {"name": "f7", "dtype": __import__("repro.ir.types", fromlist=["DataType"]).DataType.FLOAT})()
        ) or True  # structural check below is the real assertion
        from repro.ir.registers import RegisterFactory
        from repro.ir.types import DataType

        reg = RegisterFactory().new(DataType.FLOAT, name="fz")
        assert seed_memory(f"__spill_{reg.name}", 0, as_float=True) == seed_register(reg)
