"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestKernelsCommand:
    def test_lists_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "daxpy" in out and "lfk5_tridiag" in out
        assert "RecII" in out


class TestCompileCommand:
    def test_compile_named_kernel(self, capsys):
        assert main(["compile", "daxpy", "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "ideal kernel" in out
        assert "clustered kernel" in out
        assert "degradation" in out

    def test_compile_with_simulation(self, capsys):
        assert main(["compile", "dot", "--clusters", "4", "--sim"]) == 0
        out = capsys.readouterr().out
        assert "simulator equivalence: PASSED" in out

    def test_compile_with_uas(self, capsys):
        assert main(["compile", "fir5", "--partitioner", "uas", "--no-regalloc"]) == 0
        out = capsys.readouterr().out
        assert "partitioner: uas" in out

    def test_compile_copy_unit(self, capsys):
        assert main(["compile", "cmul", "--model", "copy_unit"]) == 0
        out = capsys.readouterr().out
        assert "copy_unit" in out

    def test_compile_from_file(self, tmp_path, capsys):
        ir = tmp_path / "loop.ir"
        ir.write_text(
            "loop fromfile trip=4\n"
            "  fload f1, a[i]\n"
            "  fmul f2, f1, f1\n"
            "  fstore f2, b[i]\n"
            "end\n"
        )
        assert main(["compile", str(ir), "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "fromfile" in out

    def test_unknown_loop_exits(self):
        with pytest.raises(SystemExit, match="neither a named kernel"):
            main(["compile", "no_such_kernel"])


class TestEvaluateCommand:
    def test_quick_evaluation(self, capsys):
        assert main(["evaluate", "--quick", "25"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "Figure 5" in out and "Figure 7" in out


class TestObservabilityFlags:
    def test_evaluate_trace_and_metrics_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["evaluate", "--quick", "6",
                     "--trace", str(trace), "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "trace (chrome" in out
        assert "Compile metrics (36 cells):" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"], "empty Chrome trace"
        m = json.loads(metrics.read_text())
        assert m["schema"] == "repro-compile-metrics/1"
        assert m["aggregate"]["cells"] == 36 and len(m["cells"]) == 36

    def test_evaluate_trace_jsonl_with_jobs(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(["evaluate", "--quick", "4", "--jobs", "2",
                     "--trace", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert len(lines) > 24  # at least one span per cell
        spans = [json.loads(line) for line in lines]
        cells = {(s["loop_index"], s["config"]) for s in spans}
        assert len(cells) == 24

    def test_compile_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "compile.json"
        assert main(["compile", "daxpy", "--trace", str(trace)]) == 0
        assert "trace (chrome" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "compile_loop" in names and "IdealSchedule" in names

    def test_unwritable_trace_path_fails_cleanly_and_early(self, tmp_path):
        missing = tmp_path / "no_such_dir" / "trace.json"
        with pytest.raises(SystemExit, match="cannot write trace file"):
            main(["evaluate", "--quick", "4", "--trace", str(missing)])

    def test_unwritable_metrics_path_fails_cleanly(self, tmp_path):
        missing = tmp_path / "no_such_dir" / "m.json"
        with pytest.raises(SystemExit, match="cannot write metrics file"):
            main(["evaluate", "--quick", "4", "--metrics-out", str(missing)])


class TestTuneCommand:
    def test_tune_small(self, capsys):
        assert main(["tune", "--trials", "2", "--loops", "4"]) == 0
        out = capsys.readouterr().out
        assert "incumbent objective" in out
        assert "best config" in out
