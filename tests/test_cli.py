"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestKernelsCommand:
    def test_lists_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "daxpy" in out and "lfk5_tridiag" in out
        assert "RecII" in out


class TestCompileCommand:
    def test_compile_named_kernel(self, capsys):
        assert main(["compile", "daxpy", "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "ideal kernel" in out
        assert "clustered kernel" in out
        assert "degradation" in out

    def test_compile_with_simulation(self, capsys):
        assert main(["compile", "dot", "--clusters", "4", "--sim"]) == 0
        out = capsys.readouterr().out
        assert "simulator equivalence: PASSED" in out

    def test_compile_with_uas(self, capsys):
        assert main(["compile", "fir5", "--partitioner", "uas", "--no-regalloc"]) == 0
        out = capsys.readouterr().out
        assert "partitioner: uas" in out

    def test_compile_copy_unit(self, capsys):
        assert main(["compile", "cmul", "--model", "copy_unit"]) == 0
        out = capsys.readouterr().out
        assert "copy_unit" in out

    def test_compile_from_file(self, tmp_path, capsys):
        ir = tmp_path / "loop.ir"
        ir.write_text(
            "loop fromfile trip=4\n"
            "  fload f1, a[i]\n"
            "  fmul f2, f1, f1\n"
            "  fstore f2, b[i]\n"
            "end\n"
        )
        assert main(["compile", str(ir), "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "fromfile" in out

    def test_unknown_loop_exits(self):
        with pytest.raises(SystemExit, match="neither a named kernel"):
            main(["compile", "no_such_kernel"])


class TestEvaluateCommand:
    def test_quick_evaluation(self, capsys):
        assert main(["evaluate", "--quick", "25"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "Figure 5" in out and "Figure 7" in out


class TestTuneCommand:
    def test_tune_small(self, capsys):
        assert main(["tune", "--trials", "2", "--loops", "4"]) == 0
        out = capsys.readouterr().out
        assert "incumbent objective" in out
        assert "best config" in out
