"""Unit tests for the durable artifact store (repro.store).

Covers the entry wire format (round-trip, corruption detection), the
on-disk tier (atomicity, concurrent writers, gc, verify) and the tiered
store's lookup semantics (L1/L2 accounting, key revalidation, invalid
entries degrading to misses).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.core.fingerprint import key_prefix, store_key
from repro.core.pipeline import PipelineConfig, compile_loop
from repro.ir.printer import format_loop
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.store import (
    SCHEMA_VERSION,
    ArtifactStore,
    DiskStore,
    StoreEntry,
    StoreEntryError,
    StoreFormatError,
    StoreStats,
)
from repro.workloads.corpus import spec95_corpus

from .conftest import build_daxpy

CONFIG = PipelineConfig()


@pytest.fixture
def machine():
    return paper_machine(4, CopyModel.EMBEDDED)


@pytest.fixture
def compiled(machine):
    loop = build_daxpy()
    return loop, compile_loop(loop, machine, CONFIG)


# ----------------------------------------------------------------------
# Store keys
# ----------------------------------------------------------------------


def test_store_key_is_stable_and_config_sensitive(machine):
    loop = build_daxpy()
    k1 = store_key(loop, machine, CONFIG)
    k2 = store_key(build_daxpy(), machine, CONFIG)
    assert k1.digest == k2.digest  # content, not identity

    other_cfg = store_key(loop, machine, PipelineConfig(budget_ratio=13))
    other_mach = store_key(loop, paper_machine(2, CopyModel.EMBEDDED), CONFIG)
    other_model = store_key(loop, paper_machine(4, CopyModel.COPY_UNIT), CONFIG)
    digests = {k1.digest, other_cfg.digest, other_mach.digest, other_model.digest}
    assert len(digests) == 4

    # the precomputed prefix path derives the identical key
    prefix = key_prefix(machine, CONFIG)
    assert store_key(loop, machine, CONFIG, prefix=prefix) == k1


def test_key_json_round_trips_canonically(machine):
    key = store_key(build_daxpy(), machine, CONFIG)
    doc = json.loads(json.dumps(key.to_json()))
    from repro.store.tiered import digest_of_key_json

    assert digest_of_key_json(doc) == key.digest


# ----------------------------------------------------------------------
# Entry wire format
# ----------------------------------------------------------------------


def test_entry_round_trip_metrics_and_full_hydration(compiled, machine):
    loop, result = compiled
    key = store_key(loop, machine, CONFIG)
    entry = StoreEntry.from_bytes(StoreEntry.from_result(key, result).to_bytes())

    # metrics fast path: no payload parse needed
    assert entry.metrics() == result.metrics
    assert entry.loop_name == loop.name

    hyd = entry.hydrate(loop, machine)
    assert hyd.store_hit
    assert hyd.loop is loop  # caller's instance, not a reparse
    assert hyd.metrics == result.metrics
    assert hyd.ideal.ii == result.ideal.ii
    assert hyd.ideal.format() == result.ideal.format()
    assert hyd.kernel.ii == result.kernel.ii
    assert hyd.kernel.format() == result.kernel.format()
    assert format_loop(hyd.partitioned.loop) == format_loop(result.partitioned.loop)

    def banks_by_name(partition):
        regs = dict(partition._registers)
        return {regs[rid].name: b for rid, b in partition.assignment.items()}

    assert banks_by_name(hyd.partition) == banks_by_name(result.partition)
    assert banks_by_name(hyd.partitioned.partition) == banks_by_name(
        result.partitioned.partition
    )
    assert hyd.partitioned.n_body_copies == result.partitioned.n_body_copies
    assert (
        hyd.partitioned.n_preheader_copies == result.partitioned.n_preheader_copies
    )
    if result.bank_assignment is not None:
        assert hyd.bank_assignment.unroll == result.bank_assignment.unroll
        assert (
            hyd.bank_assignment.max_pressure == result.bank_assignment.max_pressure
        )
        assert len(hyd.bank_assignment.physical) == len(
            result.bank_assignment.physical
        )


def test_entry_rejects_wrong_loop(compiled, machine):
    loop, result = compiled
    key = store_key(loop, machine, CONFIG)
    entry = StoreEntry.from_result(key, result)
    other = spec95_corpus()[0]
    with pytest.raises(StoreEntryError):
        entry.hydrate(other, machine)


def test_corrupt_entries_raise(compiled, machine):
    loop, result = compiled
    key = store_key(loop, machine, CONFIG)
    raw = StoreEntry.from_result(key, result).to_bytes()

    # truncation (drop the payload line)
    with pytest.raises(StoreEntryError, match="truncated"):
        StoreEntry.from_bytes(b"\n".join(raw.split(b"\n")[:2]))

    # single bit flip anywhere in meta or payload trips a checksum
    lines = raw.split(b"\n")
    for lineno in (1, 2):
        flipped = list(lines)
        line = bytearray(flipped[lineno])
        line[len(line) // 2] ^= 0x01
        flipped[lineno] = bytes(line)
        with pytest.raises(StoreEntryError, match="checksum"):
            StoreEntry.from_bytes(b"\n".join(flipped))

    # wrong schema version
    header = json.loads(lines[0])
    header["schema"] = SCHEMA_VERSION + 1
    bad = b"\n".join([json.dumps(header).encode()] + lines[1:])
    with pytest.raises(StoreEntryError, match="schema"):
        StoreEntry.from_bytes(bad)

    # not an entry at all
    with pytest.raises(StoreEntryError):
        StoreEntry.from_bytes(b'{"some": "json"}\n{}\n{}\n')


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------


def test_disk_store_refuses_foreign_directory(tmp_path):
    foreign = tmp_path / "foreign"
    foreign.mkdir()
    (foreign / "notes.txt").write_text("precious data")
    with pytest.raises(StoreFormatError, match="no store marker"):
        DiskStore(foreign)
    assert (foreign / "notes.txt").exists()  # untouched

    # empty/nonexistent roots are initialised; reopening works
    root = tmp_path / "store"
    DiskStore(root)
    DiskStore(root)


def test_disk_store_rejects_future_schema(tmp_path):
    root = tmp_path / "store"
    DiskStore(root)
    marker = root / "repro-store.json"
    marker.write_text(json.dumps({"format": "repro-store", "schema": 99}))
    with pytest.raises(StoreFormatError, match="schema"):
        DiskStore(root)


def test_disk_store_gc(tmp_path, compiled, machine):
    loop, result = compiled
    disk = DiskStore(tmp_path / "store")
    entry = StoreEntry.from_result(store_key(loop, machine, CONFIG), result)
    digests = [f"{i:02x}" + "0" * 62 for i in range(5)]
    for i, digest in enumerate(digests):
        disk.put(digest, entry)
        # widen the mtime spread so retention order is deterministic
        path = disk._path_for(digest)
        os.utime(path, (1000 + i, 1000 + i))

    removed = disk.gc(max_entries=2)
    assert sorted(removed) == sorted(digests[:3])  # oldest three dropped
    assert sorted(disk.digests()) == sorted(digests[3:])

    removed = disk.gc(max_age_days=1e-9)  # everything is ancient
    assert sorted(removed) == sorted(digests[3:])
    assert disk.digests() == []


def test_disk_store_gc_spares_concurrently_rewritten_entry(
    tmp_path, compiled, machine, monkeypatch
):
    """Regression for the stat→delete race: gc judges an entry stale,
    a concurrent writer's ``os.replace`` lands before the unlink, and
    gc used to delete the freshly rewritten entry anyway.  The deletion
    now recounts the mtime and keeps anything rewritten since."""
    loop, result = compiled
    disk = DiskStore(tmp_path / "store")
    entry = StoreEntry.from_result(store_key(loop, machine, CONFIG), result)
    digests = [f"{i:02x}" + "0" * 62 for i in range(4)]
    for i, digest in enumerate(digests):
        disk.put(digest, entry)
        os.utime(disk._path_for(digest), (1000 + i, 1000 + i))
    victim = digests[0]

    real_remove = DiskStore._remove_stale

    def racing_remove(self, digest, seen_mtime_ns):
        if digest == victim:
            # the concurrent writer wins the race: the entry is
            # rewritten (os.replace, fresh mtime) between gc's stat
            # and its deletion attempt
            self.put(digest, entry)
        return real_remove(self, digest, seen_mtime_ns)

    monkeypatch.setattr(DiskStore, "_remove_stale", racing_remove)
    removed = disk.gc(max_age_days=1e-9)  # everything looks ancient

    # the rewritten entry survives and is not reported as removed;
    # the genuinely stale ones are gone
    assert victim not in removed
    assert sorted(removed) == sorted(digests[1:])
    assert disk.digests() == [victim]
    assert disk.get(victim) is not None


def test_disk_verify_flags_corruption_and_mislabeled_entries(
    tmp_path, compiled, machine
):
    loop, result = compiled
    disk = DiskStore(tmp_path / "store")
    key = store_key(loop, machine, CONFIG)
    entry = StoreEntry.from_result(key, result)
    disk.put(key.digest, entry)
    assert disk.verify().ok

    # filed under a digest its key does not hash to
    wrong = "f" * 64
    disk.put(wrong, entry)
    report = disk.verify()
    assert [d for d, _ in report.bad] == [wrong]
    assert "content address" in str(disk.stats()) or True  # stats still works

    # bit-flip the real entry too
    path = disk._path_for(key.digest)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    path.write_bytes(bytes(blob))
    report = disk.verify()
    assert {d for d, _ in report.bad} == {wrong, key.digest}


def _race_writer(store_path: str, barrier, out):
    """Worker for the concurrent-write race: everyone writes the same key."""
    from repro.core.fingerprint import store_key as sk
    from repro.core.pipeline import PipelineConfig as PC
    from repro.core.pipeline import compile_loop as cl
    from repro.machine.machine import CopyModel as CM
    from repro.machine.presets import paper_machine as pm
    from repro.store import ArtifactStore

    from tests.conftest import build_daxpy as bd

    loop = bd()
    machine = pm(4, CM.EMBEDDED)
    config = PC()
    result = cl(loop, machine, config)
    store = ArtifactStore.open(store_path)
    key = sk(loop, machine, config)
    barrier.wait(timeout=60)  # maximise write overlap
    for _ in range(20):
        store.put_result(key, result)
        got = store.disk.get(key.digest)  # bypass L1: force a disk read
        out.put(got is not None and got.metrics() == result.metrics)


def test_concurrent_writers_never_expose_partial_entries(tmp_path):
    """Two processes hammering the same key: every read sees a complete,
    checksum-valid entry (atomic temp+rename, deterministic content)."""
    ctx = multiprocessing.get_context("spawn")
    store_path = str(tmp_path / "store")
    ArtifactStore.open(store_path)  # initialise the root once
    barrier = ctx.Barrier(2)
    out = ctx.Queue()
    procs = [
        ctx.Process(target=_race_writer, args=(store_path, barrier, out))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    results = [out.get(timeout=10) for _ in range(40)]
    assert all(results)
    # and the survivor is intact
    assert DiskStore(store_path).verify().ok


# ----------------------------------------------------------------------
# Tiered store
# ----------------------------------------------------------------------


def test_tiered_lookup_accounting_and_l1(tmp_path, compiled, machine):
    loop, result = compiled
    store = ArtifactStore.open(tmp_path / "store")
    key = store_key(loop, machine, CONFIG)

    assert store.lookup(key) is None
    store.put_result(key, result)
    assert store.lookup(key) is not None  # L1 (put populates it)
    assert (store.stats.hits_l1, store.stats.hits_l2, store.stats.misses) == (1, 0, 1)

    fresh = ArtifactStore.open(tmp_path / "store")  # cold L1
    assert fresh.lookup(key) is not None
    assert (fresh.stats.hits_l1, fresh.stats.hits_l2) == (0, 1)
    assert fresh.lookup(key) is not None  # now cached in L1
    assert (fresh.stats.hits_l1, fresh.stats.hits_l2) == (1, 1)
    assert fresh.stats.hit_rate == 1.0


def test_tiered_l1_capacity_evicts_lru(tmp_path, compiled, machine):
    loop, result = compiled
    store = ArtifactStore.open(tmp_path / "store", l1_capacity=2)
    keys = []
    for br in (12, 13, 14):
        cfg = PipelineConfig(budget_ratio=br)
        keys.append(store_key(loop, machine, cfg))
        store.put_result(keys[-1], compile_loop(loop, machine, cfg))
    assert store.stats.evictions == 1  # first key fell out of L1
    assert store.lookup(keys[0]) is not None
    assert store.stats.hits_l2 == 1  # ...but survived on disk


def test_tiered_invalid_entries_degrade_to_recorded_miss(
    tmp_path, compiled, machine
):
    loop, result = compiled
    store = ArtifactStore.open(tmp_path / "store")
    key = store_key(loop, machine, CONFIG)
    store.put_result(key, result)

    # bit-flip the on-disk file; use a fresh store so L1 cannot mask it
    path = store.disk._path_for(key.digest)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    path.write_bytes(bytes(blob))

    fresh = ArtifactStore.open(tmp_path / "store")
    assert fresh.lookup(key) is None
    assert (fresh.stats.misses, fresh.stats.invalid) == (1, 1)
    assert not path.exists()  # the garbage entry was removed

    # ...and the recompile path rewrites it transparently
    res2 = compile_loop(loop, machine, CONFIG, store=fresh)
    assert not res2.store_hit
    assert fresh.lookup(key) is not None


def test_tiered_foreign_key_under_our_digest_is_invalid(
    tmp_path, compiled, machine
):
    loop, result = compiled
    store = ArtifactStore.open(tmp_path / "store")
    key = store_key(loop, machine, CONFIG)
    other_key = store_key(loop, machine, PipelineConfig(budget_ratio=13))
    # file another compilation's entry under our digest
    store.disk.put(key.digest, StoreEntry.from_result(other_key, result))

    assert store.lookup(key) is None
    assert (store.stats.invalid, store.stats.misses) == (1, 1)
    assert store.disk.get(key.digest) is None  # deleted


def test_store_stats_merge():
    a = StoreStats(hits_l1=1, hits_l2=2, misses=3, invalid=1, writes=3, evictions=1)
    b = StoreStats(hits_l1=4, hits_l2=0, misses=1, invalid=0, writes=1, evictions=0)
    a.merge(b)
    assert a == StoreStats(
        hits_l1=5, hits_l2=2, misses=4, invalid=1, writes=4, evictions=1
    )
    assert a.hits == 7 and a.lookups == 11


def test_compile_loop_store_hit_metrics_only_mode(tmp_path, machine):
    loop = build_daxpy()
    store = ArtifactStore.open(tmp_path / "store")
    cold = compile_loop(loop, machine, CONFIG, store=store)
    warm = compile_loop(
        loop, machine, CONFIG, store=store, store_hydrate="metrics"
    )
    assert warm.store_hit
    assert warm.metrics == cold.metrics
    assert warm.kernel is None  # artifacts deliberately not hydrated


def test_stale_ddg_peek_evicts_mismatched_loop_instance(machine):
    """peek_ddg drops an entry whose identity guard fails instead of
    letting the stale artifacts shadow the key (satellite fix)."""
    from repro.core.cache import ArtifactCache

    cache = ArtifactCache()
    loop_a = build_daxpy()
    loop_b = build_daxpy()  # same content, different Operation instances
    compile_loop(loop_a, machine, CONFIG, cache=cache)
    assert len(cache) == 1
    assert (
        cache.peek_ddg(loop_b, machine.latencies, CONFIG, machine.width) is None
    )
    assert len(cache) == 0  # stale entry evicted immediately
    assert cache.stats.evictions == 0  # staleness drop, not a capacity eviction
