"""Tests for rotating-register-file allocation."""

import pytest

from repro.ddg.builder import build_loop_ddg
from repro.machine.presets import ideal_machine
from repro.regalloc.liveness import cyclic_liveness
from repro.regalloc.rotating import allocate_rotating, verify_rotating
from repro.sched.modulo.scheduler import modulo_schedule
from repro.workloads.kernels import NAMED_KERNELS, make_kernel
from repro.workloads.synthetic import PROFILES, SyntheticLoopGenerator


def liveness_for(loop, machine=None):
    machine = machine or ideal_machine()
    ddg = build_loop_ddg(loop)
    ks = modulo_schedule(loop, ddg, machine)
    return cyclic_liveness(ks, ddg), ks


class TestRotatingAllocation:
    @pytest.mark.parametrize("name", sorted(NAMED_KERNELS))
    def test_every_kernel_allocates_and_verifies(self, name):
        liv, _ks = liveness_for(make_kernel(name))
        alloc = allocate_rotating(liv)
        verify_rotating(alloc, liv, trips=8)

    def test_lower_bound_is_maxlive(self, daxpy_loop):
        liv, ks = liveness_for(daxpy_loop)
        alloc = allocate_rotating(liv)
        window = [0] * ks.ii
        for lr in liv:
            if lr.invariant:
                continue
            for age in range(lr.lifetime):
                window[(lr.start + age) % ks.ii] += 1
        assert alloc.n_rotating >= max(window)
        # greedy packing lands within a few registers of the bound
        assert alloc.n_rotating <= max(window) + 4

    def test_invariants_go_static(self, daxpy_loop):
        liv, _ks = liveness_for(daxpy_loop)
        alloc = allocate_rotating(liv)
        fa = daxpy_loop.factory.get("fa")
        assert fa.rid in alloc.statics
        assert fa.rid not in alloc.offsets
        assert alloc.n_static == 1

    def test_physical_rotation(self, dot_loop):
        liv, _ks = liveness_for(dot_loop)
        alloc = allocate_rotating(liv)
        f3 = dot_loop.factory.get("f3")
        p0 = alloc.physical_of(f3.rid, 0)
        p1 = alloc.physical_of(f3.rid, 1)
        if alloc.n_rotating > 1:
            assert p0 != p1  # the file rotated under the value
        pN = alloc.physical_of(f3.rid, alloc.n_rotating)
        assert pN == p0  # full revolution

    def test_verifier_catches_clashes(self, daxpy_loop):
        liv, _ks = liveness_for(daxpy_loop)
        alloc = allocate_rotating(liv)
        # sabotage: give two rotating values the same offset
        rot_rids = list(alloc.offsets)
        if len(rot_rids) >= 2:
            overlapping = None
            ranges = {lr.reg.rid: lr for lr in liv}
            for a in rot_rids:
                for b in rot_rids:
                    if a < b and ranges[a].start == ranges[b].start:
                        overlapping = (a, b)
            if overlapping:
                alloc.offsets[overlapping[0]] = alloc.offsets[overlapping[1]]
                with pytest.raises(AssertionError):
                    verify_rotating(alloc, liv, trips=8)

    def test_random_loops(self):
        gen = SyntheticLoopGenerator(31)
        for i in range(10):
            loop = gen.generate(f"rot_{i}", PROFILES["parallel"])
            liv, _ks = liveness_for(loop)
            alloc = allocate_rotating(liv)
            verify_rotating(alloc, liv, trips=6)

    def test_no_unroll_needed(self):
        """The headline trade vs MVE: rotating allocation never unrolls
        the kernel, even when lifetimes far exceed II."""
        from repro.regalloc.mve import plan_mve

        loop = make_kernel("horner4")  # deep pipeline, II=1, long lifetimes
        liv, _ks = liveness_for(loop)
        plan = plan_mve(liv)
        assert plan.unroll >= 4  # MVE must replicate the kernel
        alloc = allocate_rotating(liv)
        verify_rotating(alloc, liv, trips=12)  # rotating does not
