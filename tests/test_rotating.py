"""Tests for rotating-register-file allocation."""

import pytest

from repro.ddg.builder import build_loop_ddg
from repro.machine.presets import ideal_machine
from repro.regalloc.liveness import cyclic_liveness
from repro.regalloc.rotating import allocate_rotating, verify_rotating
from repro.sched.modulo.scheduler import modulo_schedule
from repro.workloads.kernels import NAMED_KERNELS, make_kernel
from repro.workloads.synthetic import PROFILES, SyntheticLoopGenerator


def liveness_for(loop, machine=None):
    machine = machine or ideal_machine()
    ddg = build_loop_ddg(loop)
    ks = modulo_schedule(loop, ddg, machine)
    return cyclic_liveness(ks, ddg), ks


class TestRotatingAllocation:
    @pytest.mark.parametrize("name", sorted(NAMED_KERNELS))
    def test_every_kernel_allocates_and_verifies(self, name):
        liv, _ks = liveness_for(make_kernel(name))
        alloc = allocate_rotating(liv)
        verify_rotating(alloc, liv, trips=8)

    def test_lower_bound_is_maxlive(self, daxpy_loop):
        liv, ks = liveness_for(daxpy_loop)
        alloc = allocate_rotating(liv)
        window = [0] * ks.ii
        for lr in liv:
            if lr.invariant:
                continue
            for age in range(lr.lifetime):
                window[(lr.start + age) % ks.ii] += 1
        assert alloc.n_rotating >= max(window)
        # greedy packing lands within a few registers of the bound
        assert alloc.n_rotating <= max(window) + 4

    def test_invariants_go_static(self, daxpy_loop):
        liv, _ks = liveness_for(daxpy_loop)
        alloc = allocate_rotating(liv)
        fa = daxpy_loop.factory.get("fa")
        assert fa.rid in alloc.statics
        assert fa.rid not in alloc.offsets
        assert alloc.n_static == 1

    def test_physical_rotation(self, dot_loop):
        liv, _ks = liveness_for(dot_loop)
        alloc = allocate_rotating(liv)
        f3 = dot_loop.factory.get("f3")
        p0 = alloc.physical_of(f3.rid, 0)
        p1 = alloc.physical_of(f3.rid, 1)
        if alloc.n_rotating > 1:
            assert p0 != p1  # the file rotated under the value
        pN = alloc.physical_of(f3.rid, alloc.n_rotating)
        assert pN == p0  # full revolution

    def test_verifier_catches_clashes(self, daxpy_loop):
        liv, _ks = liveness_for(daxpy_loop)
        alloc = allocate_rotating(liv)
        # sabotage: give two rotating values the same offset
        rot_rids = list(alloc.offsets)
        if len(rot_rids) >= 2:
            overlapping = None
            ranges = {lr.reg.rid: lr for lr in liv}
            for a in rot_rids:
                for b in rot_rids:
                    if a < b and ranges[a].start == ranges[b].start:
                        overlapping = (a, b)
            if overlapping:
                alloc.offsets[overlapping[0]] = alloc.offsets[overlapping[1]]
                with pytest.raises(AssertionError):
                    verify_rotating(alloc, liv, trips=8)

    def test_random_loops(self):
        gen = SyntheticLoopGenerator(31)
        for i in range(10):
            loop = gen.generate(f"rot_{i}", PROFILES["parallel"])
            liv, _ks = liveness_for(loop)
            alloc = allocate_rotating(liv)
            verify_rotating(alloc, liv, trips=6)

    def test_conflict_relation_exact_and_symmetric(self):
        """Grid-check the integer-exact ``_conflicts`` closed form against
        occupancy simulation, in both orientations (regression for the old
        float-division + epsilon version, which was neither)."""
        from repro.ir.registers import RegisterFactory
        from repro.regalloc.liveness import LiveRange
        from repro.regalloc.rotating import _conflicts

        factory = RegisterFactory()
        ru, rv = factory.new(), factory.new()

        def occupancy_overlap(u, o_u, v, o_v, ii, n, horizon=16):
            for k1 in range(horizon):
                for k2 in range(horizon):
                    if (o_u + k1) % n != (o_v + k2) % n:
                        continue
                    a, b = u.start + k1 * ii, v.start + k2 * ii
                    if a < b + v.lifetime and b < a + u.lifetime:
                        return True
            return False

        for ii in (1, 2, 3):
            for n in (1, 2, 3, 5):
                for start_u in (0, 1, 2, 5, 9):
                    for life_u in (1, 3, 6):
                        for life_v in (1, 3, 6):
                            u = LiveRange(reg=ru, start=start_u, lifetime=life_u)
                            v = LiveRange(reg=rv, start=0, lifetime=life_v)
                            for o_u in range(n):
                                forward = _conflicts(u, o_u, v, 0, ii, n)
                                backward = _conflicts(v, 0, u, o_u, ii, n)
                                truth = occupancy_overlap(u, o_u, v, 0, ii, n)
                                assert forward == backward == truth, (
                                    f"ii={ii} n={n} D={start_u} "
                                    f"L=({life_u},{life_v}) o_u={o_u}: "
                                    f"fwd={forward} bwd={backward} truth={truth}"
                                )

    def test_no_unroll_needed(self):
        """The headline trade vs MVE: rotating allocation never unrolls
        the kernel, even when lifetimes far exceed II."""
        from repro.regalloc.mve import plan_mve

        loop = make_kernel("horner4")  # deep pipeline, II=1, long lifetimes
        liv, _ks = liveness_for(loop)
        plan = plan_mve(liv)
        assert plan.unroll >= 4  # MVE must replicate the kernel
        alloc = allocate_rotating(liv)
        verify_rotating(alloc, liv, trips=12)  # rotating does not
