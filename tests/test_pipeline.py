"""End-to-end pipeline tests across all six paper configurations."""

import pytest

from repro.core.pipeline import PipelineConfig, compile_loop
from repro.core.results import degradation_bucket
from repro.machine.machine import CopyModel
from repro.machine.presets import ideal_machine, paper_machine
from repro.sched.validate import validate_kernel_schedule
from repro.workloads.kernels import NAMED_KERNELS, make_kernel


class TestCompileLoop:
    def test_rejects_monolithic_machine(self, daxpy_loop):
        with pytest.raises(ValueError):
            compile_loop(daxpy_loop, ideal_machine())

    def test_all_kernels_all_configs(self, clustered_machine):
        """Every named kernel compiles and validates on every paper config."""
        for name in NAMED_KERNELS:
            loop = make_kernel(name)
            result = compile_loop(
                loop, clustered_machine, PipelineConfig(run_regalloc=False)
            )
            validate_kernel_schedule(result.kernel, result.partitioned_ddg)
            m = result.metrics
            assert m.partitioned_ii >= 1
            assert m.ideal_ii >= m.ideal_min_ii or True
            assert m.n_kernel_ops == m.n_ops + m.n_body_copies

    def test_metrics_consistency(self, daxpy_loop):
        m = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(daxpy_loop, m, PipelineConfig(run_regalloc=False))
        mt = result.metrics
        assert mt.normalized_kernel == pytest.approx(
            100.0 * mt.partitioned_ii / mt.ideal_ii
        )
        assert mt.degradation_pct == pytest.approx(mt.normalized_kernel - 100.0)
        assert mt.zero_degradation == (mt.partitioned_ii <= mt.ideal_ii)
        assert mt.n_registers == len(result.partitioned.partition)

    def test_regalloc_runs_clean_with_default_banks(self, daxpy_loop):
        m = paper_machine(2, CopyModel.EMBEDDED)
        result = compile_loop(daxpy_loop, m, PipelineConfig(run_regalloc=True))
        assert result.bank_assignment is not None
        assert result.bank_assignment.success
        assert result.metrics.spilled_registers == 0

    def test_simulation_validates_all_kernels_on_4cluster(self):
        m = paper_machine(4, CopyModel.EMBEDDED)
        for name in ("daxpy", "dot", "lfk5_tridiag", "cmul", "iprefix", "imax"):
            loop = make_kernel(name)
            result = compile_loop(
                loop, m, PipelineConfig(run_simulation=True, run_regalloc=False)
            )
            assert result.metrics.sim_checked

    def test_ideal_schedule_independent_of_clustering(self):
        """Section 6.2: 'the 16-wide ideal schedule is the same no matter
        the cluster arrangement'."""
        iis = set()
        for n in (2, 4, 8):
            loop = make_kernel("lfk1_hydro")
            result = compile_loop(
                loop, paper_machine(n, CopyModel.EMBEDDED),
                PipelineConfig(run_regalloc=False),
            )
            iis.add(result.metrics.ideal_ii)
        assert len(iis) == 1


class TestDegradationBuckets:
    def test_bucket_edges(self):
        assert degradation_bucket(0.0) == "0.00%"
        assert degradation_bucket(-5.0) == "0.00%"
        assert degradation_bucket(0.1) == "<10%"
        assert degradation_bucket(9.99) == "<10%"
        assert degradation_bucket(10.0) == "<20%"
        assert degradation_bucket(89.0) == "<90%"
        assert degradation_bucket(90.0) == ">90%"
        assert degradation_bucket(300.0) == ">90%"


class TestSpillPath:
    def test_tiny_banks_trigger_spills(self):
        """With absurdly small banks the pipeline spills and recompiles."""
        from repro.machine.machine import MachineDescription

        m = MachineDescription(
            name="tiny-banks",
            n_clusters=2,
            fus_per_cluster=8,
            copy_model=CopyModel.EMBEDDED,
            regs_per_bank=16,
        )
        loop = make_kernel("lfk7_state")  # many simultaneously-live values
        result = compile_loop(loop, m, PipelineConfig(max_spill_rounds=8))
        assert result.bank_assignment is not None and result.bank_assignment.success
        assert result.metrics.spilled_registers > 0
        # the returned partition is the final post-spill one, consistent
        # with the partitioned loop (which extends it with copy registers)
        for rid, bank in result.partition.assignment.items():
            assert result.partitioned.partition.assignment[rid] == bank
