"""Tests of the exact branch-and-bound partitioner (``repro.exact``).

The marquee properties:

* on every problem small enough to enumerate, the branch-and-bound
  answer **equals brute force** (the solver's incremental accounting and
  pruning are exact, not heuristic);
* with a greedy warm start the exact cost is **never worse than
  greedy's** — even when the search is interrupted, the incumbent is at
  least the warm start;
* through the pipeline, ``partitioner="exact"`` emits proof metadata
  into :class:`~repro.core.results.LoopMetrics`;
* the partitioner registry fails helpfully on unknown names, and the
  partitioner choice is part of the durable store key (no stale hits
  across strategies).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

from repro.core.context import PipelineConfig
from repro.core.fingerprint import key_prefix, store_key
from repro.core.greedy import greedy_partition
from repro.core.passes import PARTITIONERS
from repro.core.pipeline import compile_loop
from repro.core.weights import DEFAULT_HEURISTIC, build_rcg_from_kernel
from repro.ddg.builder import build_loop_ddg
from repro.exact.brute import brute_force_cost, enumerate_assignments
from repro.exact.cost import (
    OVERFLOW_WEIGHT,
    assignment_cost,
    build_problem,
    partition_cost,
)
from repro.exact.bnb import ExactProof, solve_exact
from repro.ir.builder import LoopBuilder
from repro.machine.machine import CopyModel
from repro.machine.presets import ideal_machine, paper_machine
from repro.sched.modulo.scheduler import modulo_schedule
from repro.workloads.corpus import spec95_corpus

REPO_ROOT = pathlib.Path(__file__).parent.parent


def _warm_and_problem(loop, n_clusters, slots=None):
    """Greedy warm start + problem, the way the pipeline builds them."""
    ddg = build_loop_ddg(loop)
    ideal = modulo_schedule(loop, ddg, ideal_machine())
    rcg = build_rcg_from_kernel(ideal, ddg, DEFAULT_HEURISTIC)
    warm = greedy_partition(rcg, n_clusters, slots_per_bank=slots,
                            precolored=None)
    problem = build_problem(loop, n_clusters, slots, None)
    return warm, rcg, problem


class TestCostModel:
    def test_hand_computed_assignment_cost(self, daxpy_loop):
        # daxpy: f1=load, f2=load, f3=f1*fa, f4=f3+f2, store f4
        problem = build_problem(daxpy_loop, 2, None, None)
        # everything on bank 0: no copies
        all_zero = {rid: 0 for rid in problem.regs}
        assert assignment_cost(problem, all_zero) == 0
        # f4 alone on bank 1: its op reads f3 and f2 from bank 0 -> two
        # body copies (matching insert_copies in test_copies.py)
        f4 = next(rid for rid, r in problem.reg_objs.items() if r.name == "f4")
        split = {**all_zero, f4: 1}
        assert assignment_cost(problem, split) == 2

    def test_live_in_copies_are_free(self, daxpy_loop):
        problem = build_problem(daxpy_loop, 2, None, None)
        # fa is live-in (preheader copy, cost 0); moving only the ops
        # that read it costs nothing extra for fa itself
        fa = next(rid for rid, r in problem.reg_objs.items() if r.name == "fa")
        assert fa not in problem.body_defined
        base = {rid: 0 for rid in problem.regs}
        moved = {**base, fa: 1}
        assert assignment_cost(problem, moved) == 0

    def test_overflow_dominates_copies(self, daxpy_loop):
        # one slot per bank on a 5-op loop over 2 banks: at least 3 ops
        # overflow whatever the assignment — the weighted term dwarfs any
        # copy count
        problem = build_problem(daxpy_loop, 2, 1, None)
        assert problem.min_overflow() == 3
        best = brute_force_cost(problem)
        assert best >= 3 * OVERFLOW_WEIGHT
        assert best < 4 * OVERFLOW_WEIGHT  # never pays overflow it can avoid


class TestBruteForceParity:
    @pytest.mark.parametrize("n_banks", [2, 3])
    def test_fixture_loops_match_brute_force(self, daxpy_loop, dot_loop,
                                             n_banks):
        for loop in (daxpy_loop, dot_loop):
            warm, rcg, problem = _warm_and_problem(loop, n_banks)
            partition, proof = solve_exact(problem, warm=warm, rcg=rcg)
            assert proof.proven
            assert proof.cost == brute_force_cost(problem)
            assert partition_cost(problem, partition) == proof.cost
            assert proof.bound == proof.cost

    def test_small_corpus_loops_match_brute_force(self):
        """Every corpus loop small enough to enumerate: exact == brute."""
        checked = 0
        for loop in spec95_corpus(n=30):
            if len(loop.ops) > 8:
                continue
            warm, rcg, problem = _warm_and_problem(loop, 2, slots=None)
            if 2 ** problem.n_regs > 200_000:
                continue
            partition, proof = solve_exact(problem, warm=warm, rcg=rcg)
            assert proof.proven, loop.name
            assert proof.cost == brute_force_cost(problem), loop.name
            checked += 1
        assert checked >= 3  # the guard must not silently skip everything

    def test_capacity_constrained_parity(self, daxpy_loop):
        for slots in (1, 2, 3):
            warm, rcg, problem = _warm_and_problem(daxpy_loop, 2, slots=slots)
            _, proof = solve_exact(problem, warm=warm, rcg=rcg)
            assert proof.proven
            assert proof.cost == brute_force_cost(problem), f"slots={slots}"

    def test_precolored_parity_and_respect(self, daxpy_loop):
        f3 = next(r for r in daxpy_loop.registers() if r.name == "f3")
        problem = build_problem(daxpy_loop, 2, None, {f3: 1})
        partition, proof = solve_exact(problem)
        assert proof.proven
        assert partition.bank_of(f3) == 1
        assert proof.cost == brute_force_cost(problem)
        # forcing f3 away from its producers costs copies the free
        # problem avoids
        free = build_problem(daxpy_loop, 2, None, None)
        assert proof.cost >= brute_force_cost(free)

    def test_enumeration_respects_precolored(self, daxpy_loop):
        f3 = next(r for r in daxpy_loop.registers() if r.name == "f3")
        problem = build_problem(daxpy_loop, 2, None, {f3: 1})
        for assignment in enumerate_assignments(problem):
            assert assignment[f3.rid] == 1


class TestWarmStartDominance:
    """Exact cost <= greedy cost, proven or not, on real corpus loops."""

    @pytest.mark.parametrize("n_clusters", [2, 4])
    def test_exact_never_worse_than_greedy(self, n_clusters):
        for loop in spec95_corpus(n=10):
            ddg = build_loop_ddg(loop)
            ideal = modulo_schedule(loop, ddg, ideal_machine())
            slots = (16 // n_clusters) * ideal.ii
            rcg = build_rcg_from_kernel(ideal, ddg, DEFAULT_HEURISTIC)
            warm = greedy_partition(rcg, n_clusters, slots_per_bank=slots,
                                    precolored=None)
            problem = build_problem(loop, n_clusters, slots, None)
            partition, proof = solve_exact(
                problem, warm=warm, rcg=rcg, time_budget=2.0, node_limit=50_000,
            )
            assert proof.warm_cost == partition_cost(problem, warm), loop.name
            assert proof.cost <= proof.warm_cost, loop.name
            assert partition_cost(problem, partition) == proof.cost, loop.name
            assert proof.gap == proof.warm_cost - proof.cost
            if proof.proven:
                assert proof.bound == proof.cost

    def test_interrupted_search_still_returns_incumbent(self, daxpy_loop):
        warm, rcg, problem = _warm_and_problem(daxpy_loop, 2)
        _, proof = solve_exact(problem, warm=warm, rcg=rcg, node_limit=1)
        assert not proof.proven
        assert proof.cost <= proof.warm_cost
        assert proof.bound <= proof.cost


class TestPipelineIntegration:
    def test_exact_partitioner_emits_proof_metadata(self, daxpy_loop):
        machine = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(
            daxpy_loop, machine, PipelineConfig(partitioner="exact"),
        )
        m = result.metrics
        assert m.exact_cost >= 0
        assert m.exact_proven
        assert m.exact_bound == m.exact_cost
        assert m.exact_nodes > 0
        assert m.exact_cost <= m.exact_warm_cost

    def test_heuristic_partitioners_leave_defaults(self, daxpy_loop):
        machine = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(
            daxpy_loop, machine, PipelineConfig(partitioner="greedy"),
        )
        m = result.metrics
        assert m.exact_cost == -1
        assert not m.exact_proven
        assert m.exact_nodes == 0

    def test_exact_beats_greedy_on_daxpy_4c(self, daxpy_loop):
        """The smoke case: greedy overflows a 4-cluster bank on daxpy;
        exact proves a copy-only optimum."""
        machine = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(
            daxpy_loop, machine, PipelineConfig(partitioner="exact"),
        )
        m = result.metrics
        assert m.exact_warm_cost >= OVERFLOW_WEIGHT  # greedy overflowed
        assert m.exact_cost < OVERFLOW_WEIGHT       # the optimum does not


class TestRegistryErrorPaths:
    def test_api_unknown_partitioner_lists_backends(self, daxpy_loop):
        machine = paper_machine(2, CopyModel.EMBEDDED)
        with pytest.raises(ValueError) as err:
            compile_loop(
                daxpy_loop, machine, PipelineConfig(partitioner="nope"),
            )
        message = str(err.value)
        assert "nope" in message
        for name in ("exact", "greedy"):
            assert name in message

    @pytest.mark.parametrize("subcommand", [
        ("compile", "daxpy"), ("evaluate",),
    ])
    def test_cli_unknown_partitioner_lists_choices(self, subcommand):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *subcommand,
             "--partitioner", "nope"],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 2
        assert "invalid choice: 'nope'" in proc.stderr
        for name in sorted(PARTITIONERS):
            assert name in proc.stderr

    def test_registry_contains_exact(self):
        assert "exact" in PARTITIONERS
        assert "greedy" in PARTITIONERS

    def test_store_key_changes_with_partitioner(self, daxpy_loop):
        machine = paper_machine(4, CopyModel.EMBEDDED)
        digests = set()
        for name in ("greedy", "exact", "uas"):
            config = PipelineConfig(partitioner=name)
            key = store_key(daxpy_loop, machine, config,
                            key_prefix(machine, config))
            digests.add(key.digest)
        assert len(digests) == 3


class TestSolverInternals:
    def test_symmetry_detection(self, daxpy_loop):
        free = build_problem(daxpy_loop, 2, None, None)
        assert free.symmetric
        f3 = next(r for r in daxpy_loop.registers() if r.name == "f3")
        pinned = build_problem(daxpy_loop, 2, None, {f3: 1})
        assert not pinned.symmetric

    def test_store_pins_to_first_source_bank(self):
        b = LoopBuilder("storepin")
        b.fload("f1", "x")
        b.fstore("f1", "y")
        loop = b.build()
        problem = build_problem(loop, 2, None, None)
        # the store has no dest; it is homed by its first register source
        store_pin, store_srcs = problem.ops[1]
        f1 = next(rid for rid, r in problem.reg_objs.items()
                  if r.name == "f1")
        assert store_pin == f1
        assert store_srcs == (f1,)

    def test_proof_is_frozen_metadata(self):
        proof = ExactProof(cost=3, bound=3, nodes=10, proven=True,
                           warm_cost=5)
        assert proof.gap == 2
        with pytest.raises(AttributeError):
            proof.cost = 0
