"""Tests for register-port pressure analysis."""

import pytest

from repro.core.pipeline import PipelineConfig, compile_loop
from repro.ddg.builder import build_loop_ddg
from repro.ir.builder import LoopBuilder
from repro.machine.machine import CopyModel
from repro.machine.ports import port_pressure
from repro.machine.presets import ideal_machine, paper_machine
from repro.sched.modulo.scheduler import modulo_schedule
from repro.workloads.kernels import make_kernel


class TestPortPressure:
    def test_hand_computed_single_row(self):
        """II=1 kernel: every op's reads hit every cycle; writes land
        somewhere in the single row too."""
        b = LoopBuilder("pp")
        b.fload("f1", "x")
        b.fload("f2", "y")
        b.fmul("f3", "f1", "f2")
        b.fstore("f3", "o")
        loop = b.build()
        m = ideal_machine()
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        assert ks.ii == 1
        p = port_pressure(ks)
        # reads: fmul(2) + fstore(1) = 3; writes: f1, f2, f3 = 3
        assert p.max_reads_per_bank == 3
        assert p.max_writes_per_bank == 3
        assert p.max_total_per_bank == 6
        assert p.monolithic_max_total == 6

    def test_partitioning_reduces_per_bank_ports(self):
        """The paper's motivating claim, measured: the same kernel traffic
        spread over 4 banks needs far fewer ports per bank."""
        loop = make_kernel("lfk7_state")
        m = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(loop, m, PipelineConfig(run_regalloc=False))
        partitioned = port_pressure(result.kernel, result.partitioned.partition)
        monolithic = port_pressure(result.ideal)
        assert partitioned.max_total_per_bank < monolithic.max_total_per_bank
        assert partitioned.reduction_factor > 1.0

    def test_monolithic_equals_single_bank_view(self, daxpy_loop):
        m = ideal_machine()
        ddg = build_loop_ddg(daxpy_loop)
        ks = modulo_schedule(daxpy_loop, ddg, m)
        p = port_pressure(ks)
        assert p.n_banks == 1
        assert p.max_total_per_bank == p.monolithic_max_total

    def test_immediates_do_not_count(self):
        b = LoopBuilder("imm")
        b.movi("r1", 7)
        b.add("r2", "r1", 3)
        b.store("r2", "o")
        loop = b.build()
        m = ideal_machine()
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        p = port_pressure(ks)
        # reads: add reads r1, store reads r2 -> at most 2 in any row
        assert p.max_reads_per_bank <= 2

    def test_paper_section4_arithmetic(self):
        """"an architecture with a rather modest ILP level of six ...
        up to 18 different registers": 6 ops x 3 operands."""
        b = LoopBuilder("six")
        for i in range(6):
            b.fadd(f"f{i}", f"fa{i}", f"fb{i}")
        loop = b.build()
        m = ideal_machine(width=6)
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        assert ks.ii == 1
        p = port_pressure(ks)
        assert p.monolithic_max_total == 18
