"""Golden-equivalence tests for the optimized hot-path kernels.

The hot-path perf work rewrote ``recurrence_ii``, ``critical_cycle_ratio``,
``longest_path_heights`` (SCC condensation + cached int-indexed edge
arrays) and ``greedy_partition`` (single-pass benefit accumulation with
incrementally-maintained bank sizes), then reworked the scheduling and
partitioning data layer around flat integer arrays: packed occupancy-word
modulo reservation tables (with optional NumPy and reference backends),
CSR adjacency for the partitioner and component analysis, and
difference-array liveness/interference rows.  Each rewrite kept its
direct transcription as a ``_reference_*`` function or backend; these
tests drive both over hundreds of seeded random inputs — self-edges,
multi-SCC shapes, precolored nodes, copy ops, eviction sequences
included — and assert *value identity*, not approximate agreement,
because the evaluation tables must be byte-stable across the rewrite.
"""

from __future__ import annotations

import random

import pytest

from repro.core.greedy import _reference_greedy_partition, greedy_partition
from repro.core.rcg import RegisterComponentGraph
from repro.core.weights import HeuristicConfig
from repro.ddg.analysis import (
    _reference_critical_cycle_ratio,
    _reference_longest_path_heights,
    _reference_recurrence_ii,
    critical_cycle_ratio,
    longest_path_heights,
    recurrence_ii,
)
from repro.ddg.dependence import DepKind, Dependence
from repro.ddg.graph import DDG
from repro.ir.operations import Opcode, Operation
from repro.ir.registers import RegisterFactory
from repro.ir.types import DataType

DDG_SEEDS = range(120)
RCG_SEEDS = range(120)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def random_ddg(seed: int) -> DDG:
    """A random cyclic DDG: forward distance-0 edges (so the distance-0
    subgraph stays acyclic, as every real loop body's does), backward and
    self edges at distance >= 1 (creating anything from none to several
    overlapping recurrences / a large multi-node SCC)."""
    rng = random.Random(seed)
    factory = RegisterFactory()
    n = rng.randint(2, 24)
    ops = []
    for _ in range(n):
        dest = factory.new(DataType.INT)
        src = factory.new(DataType.INT)
        ops.append(Operation(opcode=Opcode.ADD, dest=dest, sources=(src, src)))
    ddg = DDG(ops=list(ops))

    n_forward = rng.randint(0, 2 * n)
    for _ in range(n_forward):
        i = rng.randrange(n - 1)
        j = rng.randrange(i + 1, n)
        ddg.add_edge(
            Dependence(ops[i], ops[j], DepKind.FLOW, rng.randint(1, 6), 0,
                       reg=ops[i].dest)
        )
    n_carried = rng.randint(0, n)
    for _ in range(n_carried):
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i == j:
            continue
        ddg.add_edge(
            Dependence(ops[i], ops[j], DepKind.FLOW, rng.randint(1, 6),
                       rng.randint(1, 3), reg=ops[i].dest)
        )
    # self-edges: accumulator-style recurrences, sometimes several per op
    for _ in range(rng.randint(0, 3)):
        k = rng.randrange(n)
        ddg.add_edge(
            Dependence(ops[k], ops[k], DepKind.FLOW, rng.randint(1, 8),
                       rng.randint(1, 3), reg=ops[k].dest)
        )
    return ddg


def random_rcg(seed: int) -> tuple[RegisterComponentGraph, list]:
    rng = random.Random(seed)
    factory = RegisterFactory()
    n = rng.randint(2, 30)
    regs = [factory.new(DataType.INT) for _ in range(n)]
    rcg = RegisterComponentGraph()
    for reg in regs:
        rcg.add_node_weight(reg, rng.uniform(-2.0, 10.0))
    for _ in range(rng.randint(0, 3 * n)):
        a, b = rng.sample(regs, 2)
        rcg.add_edge_weight(a, b, rng.uniform(-4.0, 8.0))
    return rcg, regs


# ----------------------------------------------------------------------
# DDG analyses
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_recurrence_ii_matches_reference(seed):
    ddg = random_ddg(seed)
    assert recurrence_ii(ddg) == _reference_recurrence_ii(ddg)


@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_critical_cycle_ratio_matches_reference(seed):
    ddg = random_ddg(seed)
    fast = critical_cycle_ratio(ddg)
    slow = _reference_critical_cycle_ratio(ddg)
    # both bisect to 1e-6; per-SCC restriction may land on a different
    # point of the same bracket
    assert abs(fast - slow) <= 2e-6


@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_longest_path_heights_match_reference(seed):
    ddg = random_ddg(seed)
    rec = recurrence_ii(ddg)
    for ii in (rec, rec + 1, rec + 3):
        assert longest_path_heights(ddg, ii=ii) == _reference_longest_path_heights(
            ddg, ii=ii
        )


@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_heights_raise_identically_below_recii(seed):
    """Below RecII both implementations must reject (positive cycle)."""
    ddg = random_ddg(seed)
    rec = recurrence_ii(ddg)
    if rec <= 1:
        pytest.skip("graph has no recurrence to violate")
    ii = rec - 1
    with pytest.raises(ValueError):
        longest_path_heights(ddg, ii=ii)
    with pytest.raises(ValueError):
        _reference_longest_path_heights(ddg, ii=ii)


def test_analysis_cache_invalidated_by_mutation():
    """Adding an edge after an analysis ran must be reflected, not served
    from the stale cached index."""
    ddg = random_ddg(7)
    before = recurrence_ii(ddg)
    op = ddg.ops[0]
    ddg.add_edge(Dependence(op, op, DepKind.FLOW, delay=50, distance=1,
                            reg=op.dest))
    after = recurrence_ii(ddg)
    assert after >= 50
    assert after >= before
    assert after == _reference_recurrence_ii(ddg)


# ----------------------------------------------------------------------
# greedy partitioner
# ----------------------------------------------------------------------
CONFIGS = [
    HeuristicConfig(),
    HeuristicConfig(literal_figure4=True),
    HeuristicConfig(capacity_alpha=0.0),
    HeuristicConfig(balance_penalty=0.0),
]


@pytest.mark.parametrize("seed", RCG_SEEDS)
def test_greedy_partition_matches_reference(seed):
    rcg, regs = random_rcg(seed)
    rng = random.Random(seed + 1)
    n_banks = rng.choice((2, 4, 8))
    config = CONFIGS[seed % len(CONFIGS)]

    precolored = None
    if seed % 3 == 0:
        pins = rng.sample(regs, min(len(regs), rng.randint(1, 4)))
        precolored = {reg: rng.randrange(n_banks) for reg in pins}
    slots_per_bank = rng.choice((None, 4, 16))

    fast = greedy_partition(rcg, n_banks, config=config,
                            precolored=precolored, slots_per_bank=slots_per_bank)
    slow = _reference_greedy_partition(rcg, n_banks, config=config,
                                       precolored=precolored,
                                       slots_per_bank=slots_per_bank)
    assert fast.assignment == slow.assignment


# ----------------------------------------------------------------------
# connected components over the CSR adjacency
# ----------------------------------------------------------------------
def _naive_components(rcg, positive_only):
    """Set-based flood fill straight off the public edge iterator."""
    adj: dict[int, set[int]] = {reg.rid: set() for reg in rcg.nodes()}
    for a, b, w in rcg.edges():
        if positive_only and w <= 0:
            continue
        adj[a.rid].add(b.rid)
        adj[b.rid].add(a.rid)
    seen: set[int] = set()
    comps: list[list[int]] = []
    for reg in rcg.nodes():
        if reg.rid in seen:
            continue
        stack, comp = [reg.rid], []
        seen.add(reg.rid)
        while stack:
            rid = stack.pop()
            comp.append(rid)
            for n in adj[rid]:
                if n not in seen:
                    seen.add(n)
                    stack.append(n)
        comps.append(sorted(comp))
    comps.sort(
        key=lambda c: (-sum(rcg.node_weight(rcg._nodes[r]) for r in c), c[0])
    )
    return comps


@pytest.mark.parametrize("seed", range(80))
def test_connected_components_match_naive(seed):
    from repro.core.components import connected_components

    rcg, _regs = random_rcg(seed)
    for positive_only in (False, True):
        fast = connected_components(rcg, positive_only=positive_only)
        assert [[r.rid for r in comp] for comp in fast] == _naive_components(
            rcg, positive_only
        )


# ----------------------------------------------------------------------
# modulo reservation table backends
# ----------------------------------------------------------------------
from repro.ir.operations import make_copy  # noqa: E402
from repro.machine.machine import CopyModel  # noqa: E402
from repro.machine.presets import ideal_machine, paper_machine  # noqa: E402
from repro.sched.resources import (  # noqa: E402
    MRT_BACKENDS,
    MRTBackendError,
    make_mrt,
    numpy_available,
)


def _available_backends() -> list[str]:
    return [b for b in MRT_BACKENDS if b != "numpy" or numpy_available()]


def _mrt_fixture(seed: int):
    """(machine, new_op) for one randomized MRT scenario: clustered
    machines with both copy models (so copies hit FU, port and bus
    demands) and the monolithic ideal machine."""
    rng = random.Random(seed * 7919 + 13)
    factory = RegisterFactory()

    def alu(cluster):
        a = factory.new(DataType.INT)
        b = factory.new(DataType.INT)
        op = Operation(opcode=Opcode.ADD, dest=a, sources=(b, b))
        op.cluster = cluster
        return op

    if seed % 5 == 4:
        machine = ideal_machine(width=rng.choice((1, 2, 4)))
        return rng, machine, lambda: alu(None)

    n_clusters = rng.choice((2, 4, 8))
    copy_model = rng.choice((CopyModel.EMBEDDED, CopyModel.COPY_UNIT))
    machine = paper_machine(n_clusters, copy_model)

    def new_op():
        cluster = rng.randrange(n_clusters)
        if rng.random() < 0.3:
            dtype = rng.choice((DataType.INT, DataType.FLOAT))
            return make_copy(
                factory.new(dtype), factory.new(dtype), cluster=cluster
            )
        return alu(cluster)

    return rng, machine, new_op


@pytest.mark.parametrize("seed", range(60))
def test_mrt_backends_agree_on_random_sequences(seed):
    """Drive every available backend through one randomized script of
    fits / first_free / place / remove / conflicting_ops — including the
    eviction-style churn the iterative scheduler produces — and demand
    identical answers at every step (conflict lists compared *in order*:
    the scheduler's eviction choice depends on it)."""
    rng, machine, new_op = _mrt_fixture(seed)
    ii = rng.randint(2, 10)
    backends = _available_backends()
    tables = [make_mrt(machine, ii, backend=b) for b in backends]

    pool = [new_op() for _ in range(rng.randint(2, 12))]
    placed: dict[int, object] = {}

    for _ in range(200):
        roll = rng.random()
        if roll < 0.45 or not placed:
            op = rng.choice(pool)
            if op.op_id in placed:
                continue
            t = rng.randrange(3 * ii)
            fits = [mrt.fits(op, t) for mrt in tables]
            assert len(set(fits)) == 1, (seed, backends, fits)
            if fits[0]:
                for mrt in tables:
                    mrt.place(op, t)
                placed[op.op_id] = op
        elif roll < 0.70:
            op = rng.choice(pool)
            estart = rng.randrange(3 * ii)
            slots = [mrt.first_free(op, estart) for mrt in tables]
            assert len(set(slots)) == 1, (seed, backends, slots)
            slot = slots[0]
            if slot is not None:
                assert estart <= slot < estart + ii
                if op.op_id not in placed:
                    for mrt in tables:
                        mrt.place(op, slot)
                    placed[op.op_id] = op
        elif roll < 0.85:
            op = rng.choice(pool)
            t = rng.randrange(3 * ii)
            conflicts = [mrt.conflicting_ops(op, t) for mrt in tables]
            assert all(c == conflicts[0] for c in conflicts), (seed, conflicts)
        else:
            op = placed.pop(rng.choice(list(placed)))
            times = [mrt.remove(op) for mrt in tables]
            assert len(set(times)) == 1, (seed, times)

    for op in placed.values():
        times = [mrt.time_of(op) for mrt in tables]
        assert len(set(times)) == 1


@pytest.mark.parametrize("backend", MRT_BACKENDS)
def test_mrt_backend_error_parity(backend):
    """Every backend rejects double placement and over-subscription."""
    if backend == "numpy" and not numpy_available():
        pytest.skip("numpy not importable")
    machine = ideal_machine(width=1)

    def alu():
        f = RegisterFactory()
        return Operation(
            opcode=Opcode.ADD, dest=f.new(DataType.INT),
            sources=(f.new(DataType.INT),) * 2,
        )

    mrt = make_mrt(machine, 3, backend=backend)
    op = alu()
    mrt.place(op, 4)
    with pytest.raises(ValueError):
        mrt.place(op, 1)
    with pytest.raises(ValueError):
        mrt.place(alu(), 7)  # same modulo row on a width-1 machine
    assert mrt.remove(op) == 4
    mrt.place(alu(), 1)


def test_make_mrt_rejects_unknown_backend():
    with pytest.raises(MRTBackendError):
        make_mrt(ideal_machine(), 2, backend="vectorized")


def test_numpy_backend_never_falls_back_silently():
    """With NumPy importable an explicit request must yield the NumPy
    table; without it the request must raise, not degrade to packed."""
    if numpy_available():
        from repro.sched.resources import NumpyModuloReservationTable

        mrt = make_mrt(ideal_machine(), 4, backend="numpy")
        assert type(mrt) is NumpyModuloReservationTable
    else:
        with pytest.raises(MRTBackendError):
            make_mrt(ideal_machine(), 4, backend="numpy")


# ----------------------------------------------------------------------
# scheduler parity across MRT backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(30))
def test_scheduler_attempts_identical_across_backends(seed):
    """One ``_try_ii`` attempt (the whole placement/eviction engine) must
    produce the identical times table and eviction count on every
    backend, for random DDGs on both the ideal and a clustered machine."""
    from repro.sched.modulo.scheduler import ModuloScheduler

    ddg = random_ddg(seed)
    rng = random.Random(seed + 1000)
    if seed % 2:
        machine = paper_machine(4, CopyModel.EMBEDDED)
        for op in ddg.ops:
            op.cluster = rng.randrange(4)
    else:
        machine = ideal_machine(width=rng.choice((1, 2)))

    rec = recurrence_ii(ddg)
    for ii in (rec, rec + 2, rec + 5):
        results = []
        for backend in _available_backends():
            sched = ModuloScheduler(machine, mrt_backend=backend)
            sched._demand_cache = {}
            results.append(sched._try_ii(ddg, ii))
        assert all(r == results[0] for r in results[1:]), (seed, ii, results)


def test_corpus_schedules_identical_across_backends():
    """End-to-end: modulo-schedule real corpus loops under each backend
    and require identical II and issue times."""
    from repro.ddg.builder import build_loop_ddg
    from repro.sched.modulo.scheduler import modulo_schedule
    from repro.workloads.corpus import spec95_corpus

    machine = ideal_machine()
    for loop in spec95_corpus(n=10):
        ddg = build_loop_ddg(loop)
        kernels = [
            modulo_schedule(loop, ddg, machine, mrt_backend=b)
            for b in _available_backends()
        ]
        for k in kernels[1:]:
            assert k.ii == kernels[0].ii
            assert k.times == kernels[0].times


# ----------------------------------------------------------------------
# liveness pressure rows
# ----------------------------------------------------------------------
from repro.regalloc.liveness import (  # noqa: E402
    CyclicLiveness,
    LiveRange,
    _reference_pressure_rows,
)


def random_liveness(seed: int) -> CyclicLiveness:
    rng = random.Random(seed)
    factory = RegisterFactory()
    ii = rng.randint(1, 12)
    ranges = {}
    for _ in range(rng.randint(1, 40)):
        reg = factory.new(DataType.INT)
        ranges[reg.rid] = LiveRange(
            reg=reg,
            start=rng.randrange(0, 4 * ii),
            lifetime=rng.randint(1, 5 * ii),
            invariant=rng.random() < 0.2,
            n_uses=rng.randint(0, 3),
        )
    return CyclicLiveness(ii=ii, ranges=ranges)


@pytest.mark.parametrize("seed", range(80))
def test_pressure_rows_match_reference(seed):
    liv = random_liveness(seed)
    for include_invariant in (False, True):
        assert liv.pressure_rows(include_invariant=include_invariant) == \
            _reference_pressure_rows(liv, include_invariant=include_invariant)
    assert liv.max_live() == max(_reference_pressure_rows(liv), default=0)


def test_pressure_rows_empty_liveness():
    liv = CyclicLiveness(ii=4, ranges={})
    assert liv.pressure_rows() == [0, 0, 0, 0]
    assert liv.max_live() == 0


# ----------------------------------------------------------------------
# interference construction
# ----------------------------------------------------------------------
def test_interference_matches_reference_over_corpus():
    """Bitmask-overlap interference vs the cycle-sweep oracle on real
    pipelined loops: same nodes (in order), same adjacency, same
    recorded max pressure."""
    from repro.ddg.builder import build_loop_ddg
    from repro.regalloc.interference import (
        _reference_build_interference,
        build_interference,
    )
    from repro.regalloc.liveness import cyclic_liveness
    from repro.regalloc.mve import plan_mve
    from repro.sched.modulo.scheduler import modulo_schedule
    from repro.workloads.corpus import spec95_corpus

    machine = ideal_machine()
    checked = 0
    for loop in spec95_corpus(n=14):
        ddg = build_loop_ddg(loop)
        kernel = modulo_schedule(loop, ddg, machine)
        plan = plan_mve(cyclic_liveness(kernel, ddg))
        fast = build_interference(plan)
        slow = _reference_build_interference(plan)
        assert fast.nodes == slow.nodes
        assert fast.adj == slow.adj
        assert fast._max_pressure == slow._max_pressure
        checked += 1
    assert checked == 14
