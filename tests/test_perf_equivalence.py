"""Golden-equivalence tests for the optimized hot-path kernels.

The tentpole perf work rewrote ``recurrence_ii``, ``critical_cycle_ratio``,
``longest_path_heights`` (SCC condensation + cached int-indexed edge
arrays) and ``greedy_partition`` (single-pass benefit accumulation with
incrementally-maintained bank sizes).  Each rewrite kept its direct
transcription as a ``_reference_*`` function; these tests drive both over
hundreds of seeded random graphs — self-edges, multi-SCC shapes,
precolored nodes included — and assert *value identity*, not approximate
agreement, because the evaluation tables must be byte-stable across the
rewrite.
"""

from __future__ import annotations

import random

import pytest

from repro.core.greedy import _reference_greedy_partition, greedy_partition
from repro.core.rcg import RegisterComponentGraph
from repro.core.weights import HeuristicConfig
from repro.ddg.analysis import (
    _reference_critical_cycle_ratio,
    _reference_longest_path_heights,
    _reference_recurrence_ii,
    critical_cycle_ratio,
    longest_path_heights,
    recurrence_ii,
)
from repro.ddg.dependence import DepKind, Dependence
from repro.ddg.graph import DDG
from repro.ir.operations import Opcode, Operation
from repro.ir.registers import RegisterFactory
from repro.ir.types import DataType

DDG_SEEDS = range(120)
RCG_SEEDS = range(120)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def random_ddg(seed: int) -> DDG:
    """A random cyclic DDG: forward distance-0 edges (so the distance-0
    subgraph stays acyclic, as every real loop body's does), backward and
    self edges at distance >= 1 (creating anything from none to several
    overlapping recurrences / a large multi-node SCC)."""
    rng = random.Random(seed)
    factory = RegisterFactory()
    n = rng.randint(2, 24)
    ops = []
    for _ in range(n):
        dest = factory.new(DataType.INT)
        src = factory.new(DataType.INT)
        ops.append(Operation(opcode=Opcode.ADD, dest=dest, sources=(src, src)))
    ddg = DDG(ops=list(ops))

    n_forward = rng.randint(0, 2 * n)
    for _ in range(n_forward):
        i = rng.randrange(n - 1)
        j = rng.randrange(i + 1, n)
        ddg.add_edge(
            Dependence(ops[i], ops[j], DepKind.FLOW, rng.randint(1, 6), 0,
                       reg=ops[i].dest)
        )
    n_carried = rng.randint(0, n)
    for _ in range(n_carried):
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i == j:
            continue
        ddg.add_edge(
            Dependence(ops[i], ops[j], DepKind.FLOW, rng.randint(1, 6),
                       rng.randint(1, 3), reg=ops[i].dest)
        )
    # self-edges: accumulator-style recurrences, sometimes several per op
    for _ in range(rng.randint(0, 3)):
        k = rng.randrange(n)
        ddg.add_edge(
            Dependence(ops[k], ops[k], DepKind.FLOW, rng.randint(1, 8),
                       rng.randint(1, 3), reg=ops[k].dest)
        )
    return ddg


def random_rcg(seed: int) -> tuple[RegisterComponentGraph, list]:
    rng = random.Random(seed)
    factory = RegisterFactory()
    n = rng.randint(2, 30)
    regs = [factory.new(DataType.INT) for _ in range(n)]
    rcg = RegisterComponentGraph()
    for reg in regs:
        rcg.add_node_weight(reg, rng.uniform(-2.0, 10.0))
    for _ in range(rng.randint(0, 3 * n)):
        a, b = rng.sample(regs, 2)
        rcg.add_edge_weight(a, b, rng.uniform(-4.0, 8.0))
    return rcg, regs


# ----------------------------------------------------------------------
# DDG analyses
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_recurrence_ii_matches_reference(seed):
    ddg = random_ddg(seed)
    assert recurrence_ii(ddg) == _reference_recurrence_ii(ddg)


@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_critical_cycle_ratio_matches_reference(seed):
    ddg = random_ddg(seed)
    fast = critical_cycle_ratio(ddg)
    slow = _reference_critical_cycle_ratio(ddg)
    # both bisect to 1e-6; per-SCC restriction may land on a different
    # point of the same bracket
    assert abs(fast - slow) <= 2e-6


@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_longest_path_heights_match_reference(seed):
    ddg = random_ddg(seed)
    rec = recurrence_ii(ddg)
    for ii in (rec, rec + 1, rec + 3):
        assert longest_path_heights(ddg, ii=ii) == _reference_longest_path_heights(
            ddg, ii=ii
        )


@pytest.mark.parametrize("seed", DDG_SEEDS)
def test_heights_raise_identically_below_recii(seed):
    """Below RecII both implementations must reject (positive cycle)."""
    ddg = random_ddg(seed)
    rec = recurrence_ii(ddg)
    if rec <= 1:
        pytest.skip("graph has no recurrence to violate")
    ii = rec - 1
    with pytest.raises(ValueError):
        longest_path_heights(ddg, ii=ii)
    with pytest.raises(ValueError):
        _reference_longest_path_heights(ddg, ii=ii)


def test_analysis_cache_invalidated_by_mutation():
    """Adding an edge after an analysis ran must be reflected, not served
    from the stale cached index."""
    ddg = random_ddg(7)
    before = recurrence_ii(ddg)
    op = ddg.ops[0]
    ddg.add_edge(Dependence(op, op, DepKind.FLOW, delay=50, distance=1,
                            reg=op.dest))
    after = recurrence_ii(ddg)
    assert after >= 50
    assert after >= before
    assert after == _reference_recurrence_ii(ddg)


# ----------------------------------------------------------------------
# greedy partitioner
# ----------------------------------------------------------------------
CONFIGS = [
    HeuristicConfig(),
    HeuristicConfig(literal_figure4=True),
    HeuristicConfig(capacity_alpha=0.0),
    HeuristicConfig(balance_penalty=0.0),
]


@pytest.mark.parametrize("seed", RCG_SEEDS)
def test_greedy_partition_matches_reference(seed):
    rcg, regs = random_rcg(seed)
    rng = random.Random(seed + 1)
    n_banks = rng.choice((2, 4, 8))
    config = CONFIGS[seed % len(CONFIGS)]

    precolored = None
    if seed % 3 == 0:
        pins = rng.sample(regs, min(len(regs), rng.randint(1, 4)))
        precolored = {reg: rng.randrange(n_banks) for reg in pins}
    slots_per_bank = rng.choice((None, 4, 16))

    fast = greedy_partition(rcg, n_banks, config=config,
                            precolored=precolored, slots_per_bank=slots_per_bank)
    slow = _reference_greedy_partition(rcg, n_banks, config=config,
                                       precolored=precolored,
                                       slots_per_bank=slots_per_bank)
    assert fast.assignment == slow.assignment
