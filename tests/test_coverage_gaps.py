"""Targeted tests for corners the main suites leave uncovered."""


import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.parser import parse_loop
from repro.ir.printer import format_loop
from repro.ir.types import MemRef
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.sim.reference import run_reference
from repro.sim.values import evaluate, seed_memory


class TestStridedMemRefs:
    def test_str_and_parse_round_trip(self):
        b = LoopBuilder("strided")
        b.fload("f1", "a", offset=1, stride=2)
        b.fstore("f1", "b", offset=0, stride=2)
        loop = b.build()
        text = format_loop(loop)
        assert "a[2i+1]" in text
        reparsed = parse_loop(text)
        assert reparsed.ops[0].mem == MemRef("a", 1, False, 2)

    def test_stride_distance_algebra(self):
        # store a[2i]; load a[2i-4]: same address 2 iterations later
        assert MemRef("a", 0, stride=2).same_location_distance(
            MemRef("a", -4, stride=2)
        ) == 2
        # offset not divisible by stride: never aliases
        assert MemRef("a", 0, stride=2).same_location_distance(
            MemRef("a", -3, stride=2)
        ) is None

    def test_mixed_strides_rejected(self):
        with pytest.raises(ValueError, match="mixed strides"):
            MemRef("a", 0, stride=2).same_location_distance(MemRef("a", 0, stride=3))

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            MemRef("a", 0, stride=0)

    def test_address_computation(self):
        assert MemRef("a", 3, stride=4).address(2) == 11
        assert MemRef("s", scalar=True).address(7) == 0

    def test_strided_dependence_distance_in_ddg(self):
        from repro.ddg.builder import build_loop_ddg

        b = LoopBuilder("sr")
        b.fload("f1", "x", offset=-2, stride=2)
        b.fstore("f1", "x", stride=2)
        loop = b.build()
        ddg = build_loop_ddg(loop)
        carried = [e for e in ddg.edges() if e.is_loop_carried]
        assert carried and carried[0].distance == 1


class TestOpcodesSemantics:
    def test_bitwise_and_shift_ops(self):
        b = LoopBuilder("bits")
        b.load("r1", "v")
        b.or_("r2", "r1", 5)
        b.xor("r3", "r2", 3)
        b.shr("r4", "r3", 1)
        b.store("r4", "o")
        state = run_reference(b.build(), trip_count=1)
        v = seed_memory("v", 0, as_float=False)
        assert state.memory[("o", 0)] == (((v | 5) ^ 3) >> 1)

    def test_movi_fneg_fmov(self):
        b = LoopBuilder("moves")
        b.movi("r1", 42)
        b.store("r1", "io")
        b.fload("f1", "x")
        b.fneg("f2", "f1")
        b.fmov("f3", "f2")
        b.fstore("f3", "fo")
        state = run_reference(b.build(), trip_count=1)
        assert state.memory[("io", 0)] == 42
        assert state.memory[("fo", 0)] == -state.memory[("x", 0)]

    def test_conversions(self):
        b = LoopBuilder("cvt")
        b.load("r1", "v")
        b.cvtif("f1", "r1")
        b.fmul("f2", "f1", 2.0)
        b.cvtfi("r2", "f2")
        b.store("r2", "o")
        state = run_reference(b.build(), trip_count=1)
        v = seed_memory("v", 0, as_float=False)
        assert state.memory[("o", 0)] == int(float(v) * 2.0)

    def test_evaluate_rejects_memory_ops(self):
        from repro.ir.operations import Opcode, Operation
        from repro.ir.registers import RegisterFactory
        from repro.ir.types import DataType

        f = RegisterFactory()
        op = Operation(
            opcode=Opcode.LOAD, dest=f.new(DataType.INT), mem=MemRef("a")
        )
        with pytest.raises(ValueError):
            evaluate(op, [])

    def test_fdiv_by_zero_guarded(self):
        b = LoopBuilder("fz")
        b.fload("f1", "x")
        b.fsub("f2", "f1", "f1")
        b.fdiv("f3", "f1", "f2")
        b.fstore("f3", "o")
        state = run_reference(b.build(), trip_count=1)
        assert state.memory[("o", 0)] == 0.0


class TestRunnerFailureRecording:
    def test_failures_are_recorded_not_raised(self, monkeypatch):
        from repro.core import pipeline as pipeline_mod
        from repro.evalx.runner import run_evaluation
        from repro.workloads.corpus import spec95_corpus

        loops = spec95_corpus(n=4)
        real = pipeline_mod.compile_loop
        calls = {"n": 0}

        def flaky(loop, machine, config, cache=None, **obs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("injected failure")
            return real(loop, machine, config, cache=cache, **obs)

        monkeypatch.setattr("repro.evalx.runner.compile_loop", flaky)
        run = run_evaluation(loops=loops, configs=((2, CopyModel.EMBEDDED),))
        assert len(run.failures) == 1
        assert "injected failure" in run.failures[0].error
        (label,) = run.per_config
        assert len(run.per_config[label]) == 3


class TestWholeFunctionOnCopyUnit:
    def test_copy_unit_machine(self):
        from repro.core.wholefn import compile_function
        from repro.workloads.functions import SyntheticFunctionGenerator

        fn = SyntheticFunctionGenerator(9).generate("cu_fn")
        m = paper_machine(4, CopyModel.COPY_UNIT)
        result = compile_function(fn, m)
        assert result.degradation_pct >= 0
        # copy-unit copies must not occupy FU slots in the block schedules:
        # re-validate resources through the shared checker
        from repro.ddg.builder import build_block_ddg
        from repro.sched.validate import validate_linear_schedule

        for name, block in result.clustered_blocks.items():
            ddg = build_block_ddg(block, m.latencies)
            validate_linear_schedule(result.clustered_schedules[name], ddg)


class TestUASOnCopyUnit:
    def test_uas_partition_on_copy_unit_machine(self):
        from repro.core.pipeline import PipelineConfig, compile_loop
        from repro.workloads.kernels import make_kernel

        m = paper_machine(2, CopyModel.COPY_UNIT)
        result = compile_loop(
            make_kernel("fir5"), m,
            PipelineConfig(partitioner="uas", run_regalloc=False),
        )
        assert result.metrics.partitioned_ii >= result.metrics.ideal_ii


class TestGreedyEdgeCases:
    def test_empty_rcg(self):
        from repro.core.greedy import greedy_partition
        from repro.core.rcg import RegisterComponentGraph

        part = greedy_partition(RegisterComponentGraph(), 4)
        assert len(part) == 0
        assert part.bank_sizes() == [0, 0, 0, 0]

    def test_machine_state_live_out_values(self, dot_loop):
        state = run_reference(dot_loop, trip_count=3)
        values = state.live_out_values(dot_loop)
        assert set(values) == {"f4"}
        assert isinstance(values["f4"], float)
