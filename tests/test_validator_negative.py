"""Mutation tests: corrupted schedules must be rejected.

A validator that never fires is worthless; these tests take legal
schedules and break them in each of the ways the schedulers could
conceivably get wrong, asserting the checker (or the cycle-accurate
simulator) catches every mutation.
"""

import random

import pytest

from repro.ddg.builder import build_loop_ddg
from repro.machine.machine import CopyModel
from repro.machine.presets import ideal_machine, paper_machine
from repro.sched.modulo.scheduler import modulo_schedule
from repro.sched.schedule import KernelSchedule
from repro.sched.validate import ScheduleValidationError, validate_kernel_schedule
from repro.workloads.kernels import make_kernel
from repro.workloads.synthetic import PROFILES, SyntheticLoopGenerator


def legal_kernel(name="lfk1_hydro"):
    loop = make_kernel(name)
    m = ideal_machine()
    ddg = build_loop_ddg(loop)
    return loop, ddg, m, modulo_schedule(loop, ddg, m)


class TestDependenceMutations:
    def test_pulling_a_consumer_early_is_caught(self):
        loop, ddg, m, ks = legal_kernel()
        # find any intra-iteration flow edge and violate it
        edge = next(e for e in ddg.edges() if e.distance == 0 and e.delay > 0)
        bad_times = dict(ks.times)
        bad_times[edge.dst.op_id] = max(0, ks.times[edge.src.op_id] + edge.delay - 1)
        bad = KernelSchedule(machine=m, loop=loop, ii=ks.ii, times=bad_times)
        with pytest.raises(ScheduleValidationError):
            validate_kernel_schedule(bad, ddg)

    def test_violating_a_carried_edge_is_caught(self):
        loop, ddg, m, ks = legal_kernel("lfk5_tridiag")
        carried = [e for e in ddg.edges() if e.distance > 0 and e.src is not e.dst]
        edge = carried[0]
        bad_times = dict(ks.times)
        # push the source so late that even the carried slack cannot absorb it
        bad_times[edge.src.op_id] = (
            ks.times[edge.dst.op_id] + ks.ii * edge.distance - edge.delay + 1
        )
        bad = KernelSchedule(machine=m, loop=loop, ii=ks.ii, times=bad_times)
        with pytest.raises(ScheduleValidationError):
            validate_kernel_schedule(bad, ddg)


class TestResourceMutations:
    def test_oversubscribed_row_is_caught(self):
        # 1-wide machine: co-scheduling any two ops must fail validation
        loop = make_kernel("daxpy")
        m = ideal_machine(width=1)
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        bad_times = dict(ks.times)
        a, b = loop.ops[0], loop.ops[1]
        bad_times[b.op_id] = bad_times[a.op_id] + ks.ii  # same row mod II
        bad = KernelSchedule(machine=m, loop=loop, ii=ks.ii, times=bad_times)
        with pytest.raises(ScheduleValidationError):
            validate_kernel_schedule(bad, ddg)

    def test_missing_cluster_on_clustered_machine_is_caught(self):
        m = paper_machine(2, CopyModel.EMBEDDED)
        loop = make_kernel("daxpy")
        for op in loop.ops:
            op.cluster = 0
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        loop.ops[0].cluster = None
        with pytest.raises(ScheduleValidationError, match="without cluster"):
            validate_kernel_schedule(ks, ddg)


class TestRandomizedMutations:
    def test_random_single_op_shifts_are_never_silently_accepted(self):
        """Shift one op by a random nonzero delta: either the move is
        still legal (validator passes AND the simulator agrees) or it is
        rejected.  What must never happen: validator passes but the
        simulated values diverge."""
        from repro.sim.equivalence import check_kernel_against_reference

        rng = random.Random(7)
        gen = SyntheticLoopGenerator(17)
        for i in range(6):
            loop = gen.generate(f"mut_{i}", PROFILES["reduction"])
            m = ideal_machine()
            ddg = build_loop_ddg(loop)
            ks = modulo_schedule(loop, ddg, m)
            victim = rng.choice(loop.ops)
            delta = rng.choice([-2, -1, 1, 2, ks.ii])
            bad_times = dict(ks.times)
            bad_times[victim.op_id] = max(0, bad_times[victim.op_id] + delta)
            bad = KernelSchedule(machine=m, loop=loop, ii=ks.ii, times=bad_times)
            try:
                validate_kernel_schedule(bad, ddg)
            except ScheduleValidationError:
                continue  # rejected, good
            # accepted: the simulator must agree it is correct
            check_kernel_against_reference(loop, bad, ddg, trip_count=4)
