"""Corpus fuzzing, runner integration and the ``repro check`` CLI."""

from __future__ import annotations

from repro.check.fuzz import fuzz_corpus
from repro.check.oracles import OracleViolation
from repro.cli import main
from repro.evalx.runner import _failure_cell
from repro.ir.parser import parse_loop
from tests.test_check_oracles import _buggy_expand_pipeline


def test_clean_fuzz_run(capsys):
    report = fuzz_corpus(n_loops=5, seed=2026)
    assert report.ok
    assert report.n_loops == 5
    assert report.n_cells == 10
    assert "all oracles clean" in report.format()


def test_fuzz_is_deterministic():
    a = fuzz_corpus(n_loops=4, seed=11)
    b = fuzz_corpus(n_loops=4, seed=11)
    assert [f.failure for f in a.failures] == [f.failure for f in b.failures]
    assert a.n_cells == b.n_cells


def test_injected_bug_yields_oracle_failure_cells(monkeypatch):
    monkeypatch.setattr(
        "repro.check.oracles.expand_pipeline", _buggy_expand_pipeline
    )
    report = fuzz_corpus(n_loops=2, seed=2026)
    assert not report.ok
    for failure in report.failures:
        assert failure.failure.kind == "oracle"
        assert failure.oracle == "phase_partition"
        # every failure ships a parseable, tiny reproducer
        assert failure.reproducer is not None
        assert failure.shrunk_ops is not None and failure.shrunk_ops <= 6
        parse_loop(failure.reproducer)
    assert "FAILURES" in report.format()


def test_fuzz_without_shrinking(monkeypatch):
    monkeypatch.setattr(
        "repro.check.oracles.expand_pipeline", _buggy_expand_pipeline
    )
    report = fuzz_corpus(n_loops=1, seed=2026, shrink=False)
    assert not report.ok
    assert all(f.reproducer is None for f in report.failures)


def test_failure_cell_maps_oracle_violation(dot_loop):
    cell = _failure_cell(
        0, "2 Clusters / Embedded", dot_loop,
        OracleViolation("phase_partition", "boom"), attempts=1,
    )
    assert cell.failure.kind == "oracle"
    assert "phase_partition" in cell.failure.error


def test_cli_check_exits_zero_when_clean(capsys):
    assert main(["check", "--fuzz", "3", "--seed", "2026"]) == 0
    assert "all oracles clean" in capsys.readouterr().out


def test_cli_check_exits_nonzero_and_writes_reproducers(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.setattr(
        "repro.check.oracles.expand_pipeline", _buggy_expand_pipeline
    )
    out_dir = tmp_path / "reproducers"
    code = main([
        "check", "--fuzz", "1", "--seed", "2026",
        "--shrink-out", str(out_dir),
    ])
    assert code == 1
    written = sorted(out_dir.glob("*.ir"))
    assert written
    for path in written:
        parse_loop(path.read_text(encoding="utf-8"))
