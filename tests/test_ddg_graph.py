"""Tests for the DDG container itself."""

import pytest

from repro.ddg.builder import build_loop_ddg
from repro.ddg.dependence import DepKind, Dependence
from repro.ddg.graph import DDG
from repro.ir.builder import LoopBuilder


def two_op_loop():
    b = LoopBuilder("two")
    b.fload("f1", "x")
    b.fstore("f1", "y")
    return b.build()


class TestDDGStructure:
    def test_membership_and_index(self):
        loop = two_op_loop()
        ddg = DDG(ops=list(loop.ops))
        assert loop.ops[0] in ddg
        assert ddg.index_of(loop.ops[1]) == 1

    def test_duplicate_ops_rejected(self):
        loop = two_op_loop()
        with pytest.raises(ValueError):
            DDG(ops=[loop.ops[0], loop.ops[0]])

    def test_edge_to_foreign_op_rejected(self):
        loop = two_op_loop()
        other = two_op_loop()
        ddg = DDG(ops=list(loop.ops))
        with pytest.raises(ValueError):
            ddg.add_edge(
                Dependence(loop.ops[0], other.ops[0], DepKind.MEM_ANTI, 1, 0)
            )

    def test_duplicate_edge_keeps_larger_delay(self):
        loop = two_op_loop()
        ddg = DDG(ops=list(loop.ops))
        a, b = loop.ops
        ddg.add_edge(Dependence(a, b, DepKind.MEM_ANTI, 1, 0))
        ddg.add_edge(Dependence(a, b, DepKind.MEM_ANTI, 3, 0))
        assert ddg.n_edges == 1
        assert next(ddg.edges()).delay == 3
        # smaller delay does not downgrade
        ddg.add_edge(Dependence(a, b, DepKind.MEM_ANTI, 2, 0))
        assert next(ddg.edges()).delay == 3

    def test_loop_carried_vs_intra_partition(self, dot_loop):
        ddg = build_loop_ddg(dot_loop)
        carried = ddg.loop_carried_edges()
        intra = ddg.intra_iteration_edges()
        assert len(carried) + len(intra) == ddg.n_edges
        assert all(e.distance > 0 for e in carried)
        assert all(e.distance == 0 for e in intra)

    def test_topological_order_respects_edges(self, daxpy_loop):
        ddg = build_loop_ddg(daxpy_loop)
        order = {op.op_id: i for i, op in enumerate(ddg.topological_order())}
        for e in ddg.intra_iteration_edges():
            assert order[e.src.op_id] < order[e.dst.op_id]

    def test_distance_zero_cycle_detected(self):
        loop = two_op_loop()
        ddg = DDG(ops=list(loop.ops))
        a, b = loop.ops
        ddg.add_edge(Dependence(a, b, DepKind.MEM_ANTI, 1, 0))
        ddg.add_edge(Dependence(b, a, DepKind.MEM_ANTI, 1, 0))
        with pytest.raises(ValueError, match="malformed"):
            ddg.topological_order()

    def test_subgraph_view(self, daxpy_loop):
        ddg = build_loop_ddg(daxpy_loop)
        keep = daxpy_loop.ops[:2]
        sub = ddg.subgraph_view(keep)
        assert len(sub) == 2
        for e in sub.edges():
            assert e.src in sub and e.dst in sub


class TestDependenceValidation:
    def test_negative_delay_rejected(self):
        loop = two_op_loop()
        with pytest.raises(ValueError):
            Dependence(loop.ops[0], loop.ops[1], DepKind.MEM_ANTI, -1, 0)

    def test_negative_distance_rejected(self):
        loop = two_op_loop()
        with pytest.raises(ValueError):
            Dependence(loop.ops[0], loop.ops[1], DepKind.MEM_ANTI, 1, -1)

    def test_flow_requires_register(self):
        loop = two_op_loop()
        with pytest.raises(ValueError):
            Dependence(loop.ops[0], loop.ops[1], DepKind.FLOW, 1, 0)
