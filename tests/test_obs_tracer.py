"""Tracer span semantics and export formats (repro.obs.trace)."""

import io
import json
import time

import pytest

from repro.core.pipeline import PipelineConfig, compile_loop
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.obs import NULL_TRACER, NullTracer, Tracer, export_trace, trace_format_for
from repro.workloads.kernels import make_kernel


def traced_compile(loop_name: str = "daxpy", n_clusters: int = 4) -> Tracer:
    tracer = Tracer()
    loop = make_kernel(loop_name)
    machine = paper_machine(n_clusters, CopyModel.EMBEDDED)
    with tracer.cell(0, f"{n_clusters}c", loop_name=loop.name):
        compile_loop(loop, machine, PipelineConfig(run_regalloc=False), tracer=tracer)
    return tracer


class TestSpanRecording:
    def test_nesting_depth_and_seq(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner_a"):
                pass
            with t.span("inner_b"):
                with t.span("leaf"):
                    pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner_a"].depth == by_name["inner_b"].depth == 1
        assert by_name["leaf"].depth == 2
        # seq is begin order, not completion order
        assert [s.name for s in t.sorted_spans()] == [
            "outer", "inner_a", "inner_b", "leaf"
        ]
        assert [s.seq for s in t.sorted_spans()] == [0, 1, 2, 3]

    def test_timestamps_are_monotonic_and_span_args(self):
        t = Tracer()
        with t.span("work", items=3) as sp:
            time.sleep(0.001)
            sp.set(result="done")
        (span,) = t.spans
        assert span.t1_ns > span.t0_ns
        assert span.dur_ns == span.t1_ns - span.t0_ns
        assert span.args == {"items": 3, "result": "done"}

    def test_cell_scope_resets_seq_and_sets_identity(self):
        t = Tracer()
        for i, config in ((0, "A"), (1, "A"), (0, "B")):
            with t.cell(i, config, loop_name=f"loop{i}"):
                with t.span("pass1"):
                    pass
        cells = t.by_cell()
        assert set(cells) == {(0, "A"), (1, "A"), (0, "B")}
        for key, spans in cells.items():
            assert [s.name for s in spans] == ["compile_loop", "pass1"]
            assert [s.seq for s in spans] == [0, 1]
            assert spans[0].cat == "cell"
            assert spans[0].args["config"] == key[1]

    def test_cell_scope_restores_outer_state(self):
        t = Tracer()
        with t.span("outer"):
            with t.cell(7, "cfg"):
                pass
            with t.span("after_cell"):
                pass
        by_name = {s.name: s for s in t.spans}
        # after the cell, the outer scope's seq/depth continue
        assert by_name["after_cell"].depth == 1
        assert by_name["after_cell"].loop_index is None
        assert by_name["compile_loop"].loop_index == 7

    def test_identity_is_timestamp_free(self):
        t1, t2 = Tracer(), Tracer()
        for t in (t1, t2):
            with t.cell(3, "cfg", loop_name="x"):
                with t.span("p", k=1):
                    pass
        ids1 = [s.identity() for s in t1.sorted_spans()]
        ids2 = [s.identity() for s in t2.sorted_spans()]
        assert ids1 == ids2

    def test_add_spans_merges_deterministically(self):
        t1, t2 = Tracer(), Tracer()
        with t2.cell(1, "cfg"):
            pass
        with t1.cell(0, "cfg"):
            pass
        merged = Tracer()
        merged.add_spans(t2.spans)
        merged.add_spans(t1.spans)
        assert [s.loop_index for s in merged.sorted_spans()] == [0, 1]


class TestNullTracer:
    def test_disabled_and_noop(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("anything", k=1) as sp:
            sp.set(extra=2)
        with NULL_TRACER.cell(0, "cfg", loop_name="x"):
            pass
        assert NULL_TRACER.spans == ()

    def test_compile_loop_default_records_nothing(self):
        loop = make_kernel("daxpy")
        machine = paper_machine(2, CopyModel.EMBEDDED)
        result = compile_loop(loop, machine, PipelineConfig(run_regalloc=False))
        assert result.compile_metrics is None


class TestPipelineSpans:
    def test_compile_produces_expected_hierarchy(self):
        tracer = traced_compile()
        names = [s.name for s in tracer.sorted_spans()]
        assert names[0] == "compile_loop"
        for expected in ("BuildDDG", "IdealSchedule", "ims_attempt",
                         "build_rcg", "greedy_partition", "insert_copies",
                         "ComputeMetrics"):
            assert expected in names
        root = tracer.sorted_spans()[0]
        assert root.depth == 0
        assert all(s.depth >= 1 for s in tracer.sorted_spans()[1:])

    def test_substep_spans_nest_under_their_pass(self):
        tracer = traced_compile()
        spans = tracer.sorted_spans()
        by_name = {s.name: s for s in spans}
        assert by_name["ims_attempt"].depth > by_name["IdealSchedule"].depth
        assert by_name["greedy_partition"].depth > by_name["PartitionPass"].depth
        assert "ii" in by_name["ims_attempt"].args
        assert "bank_sizes" in by_name["greedy_partition"].args


class TestChromeExport:
    def export(self, tracer: Tracer) -> dict:
        buf = io.StringIO()
        n = export_trace(tracer, buf, "chrome")
        doc = json.loads(buf.getvalue())
        assert n > 0
        return doc

    def test_schema_every_event_complete(self):
        doc = self.export(traced_compile())
        assert "traceEvents" in doc
        for event in doc["traceEvents"]:
            for field in ("ph", "ts", "pid", "tid", "name"):
                assert field in event, f"event missing {field}: {event}"
            assert event["ph"] in ("B", "E", "M")

    def test_begin_end_balanced_and_nested_per_thread(self):
        doc = self.export(traced_compile())
        stacks: dict[tuple, list[str]] = {}
        for event in doc["traceEvents"]:
            key = (event["pid"], event["tid"])
            if event["ph"] == "B":
                stacks.setdefault(key, []).append(event["name"])
            elif event["ph"] == "E":
                assert stacks.get(key), f"E without B on {key}"
                assert stacks[key].pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_timestamps_monotonic_per_thread(self):
        tracer = Tracer()
        for i in range(3):
            loop = make_kernel("daxpy")
            machine = paper_machine(2, CopyModel.EMBEDDED)
            with tracer.cell(i, "2c", loop_name=loop.name):
                compile_loop(loop, machine, PipelineConfig(run_regalloc=False),
                             tracer=tracer)
        doc = self.export(tracer)
        last: dict[tuple, int] = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, 0)
            last[key] = event["ts"]

    def test_metadata_names_processes_and_threads(self):
        doc = self.export(traced_compile())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
        proc = next(e for e in meta if e["name"] == "process_name")
        assert proc["args"]["name"] == "4c"
        thread = next(e for e in meta if e["name"] == "thread_name")
        assert thread["args"]["name"] == "daxpy"


class TestJsonlExport:
    def test_one_valid_object_per_span_in_merge_order(self):
        tracer = traced_compile()
        buf = io.StringIO()
        n = export_trace(tracer, buf, "jsonl")
        lines = buf.getvalue().splitlines()
        assert n == len(lines) == len(tracer.spans)
        docs = [json.loads(line) for line in lines]
        assert [d["seq"] for d in docs] == sorted(d["seq"] for d in docs)
        assert docs[0]["name"] == "compile_loop"
        assert all(d["dur_us"] >= 0 for d in docs)


class TestFormatSelection:
    def test_extension_mapping(self):
        assert trace_format_for("trace.jsonl") == "jsonl"
        assert trace_format_for("trace.json") == "chrome"
        assert trace_format_for("anything") == "chrome"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown trace format"):
            export_trace(Tracer(), io.StringIO(), "xml")
