"""Tests for modulo variable expansion and interference construction."""

import math


from repro.ddg.builder import build_loop_ddg
from repro.ir.builder import LoopBuilder
from repro.machine.presets import ideal_machine
from repro.regalloc.interference import build_interference
from repro.regalloc.liveness import cyclic_liveness
from repro.regalloc.mve import plan_mve
from repro.sched.modulo.scheduler import modulo_schedule


def plan_for(loop):
    m = ideal_machine()
    ddg = build_loop_ddg(loop)
    ks = modulo_schedule(loop, ddg, m)
    liv = cyclic_liveness(ks, ddg)
    return plan_mve(liv), liv, ks


class TestMVEPlanning:
    def test_unroll_factor_covers_longest_lifetime(self, daxpy_loop):
        plan, liv, ks = plan_for(daxpy_loop)
        assert plan.unroll == max(
            1,
            max(
                math.ceil(lr.lifetime / ks.ii)
                for lr in liv
                if not lr.invariant
            ),
        )
        assert plan.timeline == plan.unroll * ks.ii

    def test_replica_counts(self, daxpy_loop):
        plan, liv, ks = plan_for(daxpy_loop)
        for lr in liv:
            q = plan.replicas[lr.reg.rid]
            if lr.invariant:
                assert q == 1
            else:
                assert q == max(1, math.ceil(lr.lifetime / ks.ii))

    def test_same_name_windows_never_overlap(self, daxpy_loop):
        """MVE's whole point: windows of one name are q*II apart with
        lifetime <= q*II, so no self-overlap on the cyclic timeline."""
        plan, _liv, _ks = plan_for(daxpy_loop)
        from collections import defaultdict

        by_name = defaultdict(list)
        for w in plan.windows:
            if w.rid in plan.invariant_rids:
                continue
            by_name[(w.rid, w.replica)].append(w)
        for _name, windows in by_name.items():
            occupancy = [0] * plan.timeline
            for w in windows:
                for off in range(w.length):
                    occupancy[(w.start + off) % plan.timeline] += 1
            assert max(occupancy) <= 1

    def test_names_enumeration(self, dot_loop):
        plan, _liv, _ks = plan_for(dot_loop)
        names = plan.names()
        assert len(names) == sum(plan.replicas.values())
        assert len(set(names)) == len(names)


class TestInterference:
    def test_invariant_interferes_with_everything(self, daxpy_loop):
        plan, liv, _ks = plan_for(daxpy_loop)
        graph = build_interference(plan)
        fa_rid = daxpy_loop.factory.get("fa").rid
        others = [n for n in graph.nodes if n[0] != fa_rid]
        assert all(graph.interferes((fa_rid, 0), n) for n in others)

    def test_replicas_of_long_lived_value_interfere(self, daxpy_loop):
        """daxpy at II=1 has lifetimes > 1, so consecutive iterations'
        instances coexist and their names must interfere."""
        plan, liv, ks = plan_for(daxpy_loop)
        assert ks.ii == 1 and plan.unroll > 1
        graph = build_interference(plan)
        f1 = daxpy_loop.factory.get("f1").rid
        q = plan.replicas[f1]
        assert q >= 2
        assert graph.interferes((f1, 0), (f1, 1))

    def test_bank_restriction_filters_nodes(self, daxpy_loop):
        plan, _liv, _ks = plan_for(daxpy_loop)
        f1 = daxpy_loop.factory.get("f1").rid
        graph = build_interference(plan, rids={f1})
        assert all(n[0] == f1 for n in graph.nodes)

    def test_max_pressure_recorded(self, daxpy_loop):
        plan, _liv, _ks = plan_for(daxpy_loop)
        graph = build_interference(plan)
        assert graph.max_clique_lower_bound() >= 2

    def test_disjoint_lifetimes_do_not_interfere(self):
        # two values with strictly disjoint windows at a long II
        b = LoopBuilder("disjoint")
        b.fload("f1", "x", offset=-1)
        b.fmul("f2", "f1", "f1")
        b.fmul("f3", "f2", "f2")
        b.fmul("f4", "f3", "f3")
        b.fstore("f4", "x")
        loop = b.build()
        plan, liv, ks = plan_for(loop)
        graph = build_interference(plan)
        f1 = loop.factory.get("f1").rid
        f4 = loop.factory.get("f4").rid
        lr1, lr4 = liv.range_of(loop.factory.get("f1")), liv.range_of(loop.factory.get("f4"))
        if lr1.end <= lr4.start:  # truly disjoint in this schedule
            assert not graph.interferes((f1, 0), (f4, 0))
