"""Fault primitives and the evaluation runner's fault paths.

Covers the three failure kinds end-to-end: a worker that raises
(``exception``), a worker killed mid-chunk (``crash``, isolated by the
chunk-size-1 retry) and a loop exceeding the wall-clock timeout
(``timeout``) — in each case the run completes, the failure carries the
right kind/attempt metadata, and every surviving loop's metrics match
the clean serial run's exactly.
"""

import signal
import time

import pytest

from repro.core.faults import (
    FAULT_CRASH_ENV,
    FAULT_HANG_ENV,
    FAULT_RAISE_ENV,
    DeadlineExceeded,
    call_with_deadline,
    deadline,
    maybe_inject_fault,
    retry,
)
from repro.core.pipeline import PipelineConfig
from repro.evalx.export import run_to_csv
from repro.evalx.runner import run_evaluation
from repro.machine.machine import CopyModel
from repro.workloads.corpus import spec95_corpus

CONFIG = PipelineConfig(run_regalloc=False)
ONE_CONFIG = ((2, CopyModel.EMBEDDED),)


class TestDeadline:
    def test_fast_call_returns_value(self):
        assert call_with_deadline(lambda x: x + 1, 41, seconds=10.0) == 42

    def test_sleep_is_interrupted(self):
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            with deadline(0.2):
                time.sleep(30)
        assert time.monotonic() - t0 < 10

    def test_cpu_bound_python_is_interrupted(self):
        with pytest.raises(DeadlineExceeded):
            with deadline(0.2):
                x = 0
                while True:  # pure-Python spin, no sleeps, no IO
                    x += 1

    def test_none_and_nonpositive_mean_no_budget(self):
        with deadline(None):
            pass
        with deadline(0):
            pass
        with deadline(-1.0):
            pass

    def test_exception_carries_budget(self):
        with pytest.raises(DeadlineExceeded) as info:
            call_with_deadline(time.sleep, 30, seconds=0.1)
        assert info.value.seconds == 0.1

    def test_timer_and_handler_restored(self):
        before = signal.getsignal(signal.SIGALRM)
        with deadline(30.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
        assert signal.getsignal(signal.SIGALRM) is before


class TestNestedDeadline:
    """Regression: nested ``deadline()`` calls must not lose the outer
    budget.  The inner block's exit used to run ``setitimer(ITIMER_REAL,
    0.0)`` unconditionally, cancelling the outer timer — code after a
    completed inner deadline then ran with no budget at all (the serve
    workers stack a per-cell timeout inside a per-request budget, which
    is exactly this shape)."""

    def test_outer_budget_survives_completed_inner(self):
        # fails on the unfixed code: the outer timer is cancelled by the
        # inner exit, the sleep completes, and no DeadlineExceeded raises
        with pytest.raises(DeadlineExceeded) as info:
            with deadline(0.4):
                with deadline(5.0):
                    time.sleep(0.05)  # inner finishes well under budget
                time.sleep(2.0)  # outer must still fire here
        assert info.value.seconds == 0.4

    def test_outer_remaining_reduced_by_inner_elapsed(self):
        # the restored outer budget is what *remains*, not a fresh start
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceeded) as info:
            with deadline(0.5):
                with deadline(5.0):
                    time.sleep(0.3)
                time.sleep(2.0)
        elapsed = time.monotonic() - t0
        assert info.value.seconds == 0.5
        assert 0.4 <= elapsed < 1.5  # ~0.5s total, not 0.3 + 0.5

    def test_inner_fires_inside_outer(self):
        with pytest.raises(DeadlineExceeded) as info:
            with deadline(30.0):
                with deadline(0.1):
                    time.sleep(5)
        assert info.value.seconds == 0.1

    def test_timer_clean_after_nested_exit(self):
        before = signal.getsignal(signal.SIGALRM)
        with deadline(5.0):
            with deadline(1.0):
                pass
            # between the blocks the outer budget must be armed
            assert 0.0 < signal.getitimer(signal.ITIMER_REAL)[0] <= 5.0
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
        assert signal.getsignal(signal.SIGALRM) is before


class TestRetry:
    def test_first_attempt_success(self):
        value, attempts = retry(lambda attempt: attempt * 10, attempts=3)
        assert (value, attempts) == (10, 1)

    def test_retries_until_success(self):
        def flaky(attempt):
            if attempt < 3:
                raise ValueError("not yet")
            return "ok"

        value, attempts = retry(flaky, attempts=3)
        assert (value, attempts) == ("ok", 3)

    def test_exhausted_attempts_raise_last_error(self):
        def always(attempt):
            raise ValueError(f"attempt {attempt}")

        with pytest.raises(ValueError, match="attempt 2"):
            retry(always, attempts=2)

    def test_non_matching_exception_propagates_immediately(self):
        calls = []

        def wrong_kind(attempt):
            calls.append(attempt)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            retry(wrong_kind, attempts=5, retry_on=(ValueError,))
        assert calls == [1]

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            retry(lambda attempt: attempt, attempts=0)


class TestFaultInjection:
    def test_no_env_is_a_noop(self, monkeypatch):
        for var in (FAULT_CRASH_ENV, FAULT_HANG_ENV, FAULT_RAISE_ENV):
            monkeypatch.delenv(var, raising=False)
        maybe_inject_fault("anything")

    def test_raise_injection_matches_by_name(self, monkeypatch):
        monkeypatch.setenv(FAULT_RAISE_ENV, "alpha, beta")
        maybe_inject_fault("gamma")  # not listed: no-op
        with pytest.raises(RuntimeError, match="injected fault for 'beta'"):
            maybe_inject_fault("beta")


class TestRunnerTimeout:
    def test_serial_timeout_recorded_and_survivors_match(self, monkeypatch):
        loops = spec95_corpus(n=4)
        clean = run_evaluation(loops=loops, config=CONFIG, configs=ONE_CONFIG)
        monkeypatch.setenv(FAULT_HANG_ENV, loops[1].name)
        run = run_evaluation(
            loops=loops, config=CONFIG, configs=ONE_CONFIG, timeout=0.5
        )
        assert [(f.loop_name, f.kind, f.attempts) for f in run.failures] == [
            (loops[1].name, "timeout", 1)
        ]
        assert "deadline" in run.failures[0].error
        assert run.timeout_seconds == 0.5
        (label,) = run.per_config
        survivors = [m for m in clean.per_config[label]
                     if m.loop_name != loops[1].name]
        assert run.per_config[label] == survivors

    def test_parallel_timeout_recorded_in_worker(self, monkeypatch):
        loops = spec95_corpus(n=4)
        clean = run_evaluation(loops=loops, config=CONFIG, configs=ONE_CONFIG)
        monkeypatch.setenv(FAULT_HANG_ENV, loops[2].name)
        run = run_evaluation(
            loops=loops, config=CONFIG, configs=ONE_CONFIG, timeout=0.5, jobs=2
        )
        assert [(f.loop_name, f.kind) for f in run.failures] == [
            (loops[2].name, "timeout")
        ]
        (label,) = run.per_config
        survivors = [m for m in clean.per_config[label]
                     if m.loop_name != loops[2].name]
        assert run.per_config[label] == survivors

    def test_generous_timeout_changes_nothing(self):
        loops = spec95_corpus(n=4)
        untimed = run_evaluation(loops=loops, config=CONFIG, configs=ONE_CONFIG)
        timed = run_evaluation(
            loops=loops, config=CONFIG, configs=ONE_CONFIG, timeout=300.0
        )
        assert not timed.failures
        assert run_to_csv(timed) == run_to_csv(untimed)


class TestRunnerWorkerRaises:
    def test_injected_exception_identical_serial_and_parallel(self, monkeypatch):
        loops = spec95_corpus(n=5)
        monkeypatch.setenv(FAULT_RAISE_ENV, loops[3].name)
        serial = run_evaluation(loops=loops, config=CONFIG)
        parallel = run_evaluation(loops=loops, config=CONFIG, jobs=2)
        assert serial.failures == parallel.failures
        assert len(serial.failures) == 6  # one per paper configuration
        assert all(
            f.kind == "exception" and f.attempts == 1 and "injected fault" in f.error
            for f in serial.failures
        )
        assert run_to_csv(serial) == run_to_csv(parallel)


class TestRunnerCrash:
    def test_worker_killed_mid_chunk_is_isolated(self, monkeypatch):
        loops = spec95_corpus(n=6)
        clean = run_evaluation(loops=loops, config=CONFIG)
        monkeypatch.setenv(FAULT_CRASH_ENV, loops[2].name)
        run = run_evaluation(loops=loops, config=CONFIG, jobs=2)
        # the dead loop is recorded once per configuration, as a crash,
        # after the chunk-size-1 isolation retry
        assert {f.loop_name for f in run.failures} == {loops[2].name}
        assert len(run.failures) == 6
        assert all(f.kind == "crash" and f.attempts == 2 for f in run.failures)
        # every other loop's metrics survive, in clean serial order
        for label, metrics in clean.per_config.items():
            survivors = [m for m in metrics if m.loop_name != loops[2].name]
            assert run.per_config[label] == survivors


class TestAbsorbErrorsPropagate:
    """Regression: the parallel runner's chunk loop used to wrap
    ``absorb(fut.result())`` in one bare ``except Exception``, so a
    merge/accounting bug in the coordinator was retried in isolation and
    misreported as a worker crash.  Only failures that crossed the
    process boundary may poison a chunk; absorb-side errors are real
    bugs and must propagate."""

    def test_absorb_bug_propagates_instead_of_poisoning(self, monkeypatch):
        import repro.evalx.runner as runner_mod

        def boom(self, stats):
            raise RuntimeError("absorb-side accounting bug")

        # absorb_cache_stats runs only in the coordinating process, on
        # every successfully returned chunk
        monkeypatch.setattr(runner_mod.EvalRun, "absorb_cache_stats", boom)
        with pytest.raises(RuntimeError, match="absorb-side accounting bug"):
            run_evaluation(
                loops=spec95_corpus(n=2), config=CONFIG,
                configs=ONE_CONFIG, jobs=2,
            )


class TestAcceptance:
    def test_one_crash_one_timeout_under_two_jobs(self, monkeypatch):
        """ISSUE acceptance: with one loop forced to crash and one forced
        to time out under jobs=2, the run completes, records exactly
        those two failures (per configuration) with the correct kinds,
        and all other metrics are byte-identical to a clean serial run."""
        loops = spec95_corpus(n=6)
        crash, hang = loops[1].name, loops[4].name
        clean = run_evaluation(loops=loops, config=CONFIG)
        monkeypatch.setenv(FAULT_CRASH_ENV, crash)
        monkeypatch.setenv(FAULT_HANG_ENV, hang)
        run = run_evaluation(loops=loops, config=CONFIG, jobs=2, timeout=1.0)

        assert {(f.loop_name, f.kind) for f in run.failures} == {
            (crash, "crash"),
            (hang, "timeout"),
        }
        assert len(run.failures) == 12  # 2 loops x 6 configurations
        for label, metrics in clean.per_config.items():
            survivors = [m for m in metrics if m.loop_name not in (crash, hang)]
            assert run.per_config[label] == survivors
