"""Tests for the evaluation harness: metrics, runner, tables, figures."""

import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.results import DEGRADATION_BUCKETS, LoopMetrics
from repro.evalx.figures import compute_figure
from repro.evalx.metrics import (
    arithmetic_mean,
    bucket_histogram,
    harmonic_mean,
    percent_zero_degradation,
)
from repro.evalx.runner import config_label, run_evaluation
from repro.evalx.report import render_full_report
from repro.evalx.table1 import compute_table1
from repro.evalx.table2 import compute_table2
from repro.machine.machine import CopyModel
from repro.workloads.corpus import spec95_corpus


def fake_metrics(ideal_ii, part_ii, name="l"):
    return LoopMetrics(
        loop_name=name, machine_name="m", n_ops=10,
        ideal_ii=ideal_ii, ideal_min_ii=ideal_ii, ideal_rec_ii=1, ideal_res_ii=1,
        ideal_ipc=10 / ideal_ii,
        partitioned_ii=part_ii, partitioned_min_ii=part_ii,
        partitioned_ipc=10 / part_ii,
        n_kernel_ops=10, n_body_copies=0, n_preheader_copies=0,
        n_registers=8, n_components=1,
    )


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([100, 120, 140]) == 120

    def test_harmonic_leq_arithmetic(self):
        vals = [100.0, 150.0, 300.0]
        assert harmonic_mean(vals) <= arithmetic_mean(vals)

    def test_harmonic_of_constant(self):
        assert harmonic_mean([5.0, 5.0]) == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])


class TestHistograms:
    def test_buckets_sum_to_100(self):
        ms = [fake_metrics(2, 2), fake_metrics(2, 3), fake_metrics(4, 9)]
        hist = bucket_histogram(ms)
        assert sum(hist.values()) == pytest.approx(100.0)
        assert set(hist) == set(DEGRADATION_BUCKETS)
        assert hist["0.00%"] == pytest.approx(100 / 3)
        assert hist[">90%"] == pytest.approx(100 / 3)

    def test_percent_zero(self):
        ms = [fake_metrics(2, 2), fake_metrics(2, 4)]
        assert percent_zero_degradation(ms) == 50.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bucket_histogram([])


class TestSmallEvaluation:
    @pytest.fixture(scope="class")
    def small_run(self):
        loops = spec95_corpus(n=30)
        return run_evaluation(
            loops=loops,
            config=PipelineConfig(run_regalloc=False),
            configs=((2, CopyModel.EMBEDDED), (2, CopyModel.COPY_UNIT)),
        )

    def test_run_structure(self, small_run):
        assert not small_run.failures
        label = config_label(2, CopyModel.EMBEDDED)
        assert label in small_run.per_config
        assert len(small_run.per_config[label]) == 30
        assert small_run.elapsed_seconds > 0

    def test_table1_partial_configs(self, small_run):
        t1 = compute_table1(small_run)
        key = (2, CopyModel.EMBEDDED)
        assert key in t1.clustered_ipc
        assert (4, CopyModel.EMBEDDED) not in t1.clustered_ipc
        assert t1.ideal_ipc > 0

    def test_table2_normalization(self, small_run):
        t2 = compute_table2(small_run)
        key = (2, CopyModel.EMBEDDED)
        assert t2.arith[key] >= 100.0
        assert t2.harmonic[key] <= t2.arith[key]

    def test_figure(self, small_run):
        fig = compute_figure(small_run, 2)
        assert fig.figure_number == 5
        assert sum(fig.embedded.values()) == pytest.approx(100.0)
        assert 0 <= fig.zero_degradation_pct <= 100
        text = fig.format()
        assert "Figure 5" in text and "0.00%" in text

    def test_figure_requires_both_models(self, small_run):
        with pytest.raises(KeyError):
            compute_figure(small_run, 4)  # not in this small run

    def test_figure_bad_cluster_count(self, small_run):
        with pytest.raises(ValueError):
            compute_figure(small_run, 3)

    def test_metrics_for_accessor(self, small_run):
        ms = small_run.metrics_for(2, CopyModel.EMBEDDED)
        assert all(isinstance(m, LoopMetrics) for m in ms)


class TestTableFormatting:
    def test_table_formats_include_paper_rows(self):
        loops = spec95_corpus(n=8)
        run = run_evaluation(loops=loops, config=PipelineConfig(run_regalloc=False))
        t1, t2 = compute_table1(run), compute_table2(run)
        assert "(paper)" in t1.format()
        assert "Ideal" in t1.format()
        assert "Arithmetic Mean" in t2.format()
        assert "(paper arith)" in t2.format()
        report = render_full_report(run)
        assert "Table 1" in report and "Table 2" in report
        assert "Figure 5" in report and "Figure 7" in report
        assert "Zero-degradation" in report
