"""Tests for the iterative partition-refinement phase."""


from repro.core.greedy import Partition, greedy_partition
from repro.core.iterative import refine_partition
from repro.core.pipeline import PipelineConfig, compile_loop
from repro.core.weights import build_rcg_from_kernel
from repro.ddg.builder import build_loop_ddg
from repro.machine.machine import CopyModel
from repro.machine.presets import ideal_machine, paper_machine
from repro.sched.modulo.scheduler import modulo_schedule
from repro.workloads.kernels import make_kernel
from repro.workloads.synthetic import PROFILES, SyntheticLoopGenerator


def greedy_seed(loop, machine):
    ddg = build_loop_ddg(loop, machine.latencies)
    ideal = ideal_machine(width=machine.width, latencies=machine.latencies)
    ks = modulo_schedule(loop, ddg, ideal)
    rcg = build_rcg_from_kernel(ks, ddg)
    return greedy_partition(
        rcg, machine.n_clusters, slots_per_bank=machine.fus_per_cluster * ks.ii
    )


class TestRefinePartition:
    def test_never_worse(self):
        m = paper_machine(4, CopyModel.EMBEDDED)
        gen = SyntheticLoopGenerator(55)
        for i in range(6):
            loop = gen.generate(f"ref_{i}", PROFILES["parallel"])
            seed = greedy_seed(loop, m)
            refined, stats = refine_partition(loop, seed, m)
            assert stats.final_ii <= stats.initial_ii
            assert (stats.final_ii, stats.final_copies) <= (
                stats.initial_ii, stats.initial_copies,
            )

    def test_input_partition_unmodified(self):
        m = paper_machine(2, CopyModel.EMBEDDED)
        loop = make_kernel("lfk1_hydro")
        seed = greedy_seed(loop, m)
        before = dict(seed.assignment)
        refine_partition(loop, seed, m)
        assert seed.assignment == before

    def test_stats_are_consistent(self):
        m = paper_machine(4, CopyModel.EMBEDDED)
        loop = make_kernel("fir5")
        seed = greedy_seed(loop, m)
        refined, stats = refine_partition(loop, seed, m, max_rounds=3)
        assert stats.rounds <= 3
        assert stats.moves_kept <= stats.moves_tried

    def test_fixes_a_deliberately_bad_partition(self):
        """Scatter a serial chain across banks; refinement must claw back
        most of the damage."""
        m = paper_machine(4, CopyModel.EMBEDDED)
        loop = make_kernel("horner4")
        bad = Partition(n_banks=4)
        for i, reg in enumerate(sorted(loop.registers(), key=lambda r: r.rid)):
            bad.assign(reg, i % 4)
        refined, stats = refine_partition(loop, bad, m, max_rounds=8)
        assert stats.final_copies <= stats.initial_copies
        assert stats.final_ii <= stats.initial_ii

    def test_pipeline_partitioner_option(self):
        m = paper_machine(4, CopyModel.EMBEDDED)
        loop = make_kernel("lfk7_state")
        greedy = compile_loop(
            make_kernel("lfk7_state"), m,
            PipelineConfig(partitioner="greedy", run_regalloc=False),
        )
        iterative = compile_loop(
            loop, m, PipelineConfig(partitioner="iterative", run_regalloc=False)
        )
        assert iterative.metrics.partitioned_ii <= greedy.metrics.partitioned_ii

    def test_corpus_slice_improvement(self):
        """On a mixed slice the iterative phase must strictly improve the
        aggregate — the Nystrom/Eichenberger effect the paper cites."""
        import statistics

        m = paper_machine(4, CopyModel.EMBEDDED)
        gen = SyntheticLoopGenerator(2024)
        loops = [
            gen.generate(f"it_{i}", PROFILES[p])
            for i, p in enumerate(["parallel", "recurrence", "reduction"] * 4)
        ]
        means = {}
        for which in ("greedy", "iterative"):
            vals = [
                compile_loop(
                    l, m, PipelineConfig(partitioner=which, run_regalloc=False)
                ).metrics.normalized_kernel
                for l in loops
            ]
            means[which] = statistics.mean(vals)
        assert means["iterative"] <= means["greedy"]
