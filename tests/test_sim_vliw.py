"""Tests for the cycle-accurate VLIW executor and equivalence checking."""

import pytest

from repro.ddg.builder import build_loop_ddg
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.sched.modulo.scheduler import modulo_schedule
from repro.sched.schedule import KernelSchedule
from repro.sim.equivalence import (
    EquivalenceError,
    check_kernel_against_reference,
    check_loop_equivalence,
    initial_registers_for,
)
from repro.sim.reference import run_reference
from repro.sim.vliw import TimingViolation, run_pipelined
from repro.workloads.kernels import NAMED_KERNELS, make_kernel


class TestIdealKernelEquivalence:
    @pytest.mark.parametrize("name", sorted(NAMED_KERNELS))
    def test_every_kernel_pipelines_correctly_on_ideal(self, name, ideal16):
        loop = make_kernel(name)
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, ideal16)
        check_kernel_against_reference(loop, ks, ddg, trip_count=6)

    def test_longer_trip_counts(self, dot_loop, ideal16):
        ddg = build_loop_ddg(dot_loop)
        ks = modulo_schedule(dot_loop, ddg, ideal16)
        for trips in (1, 2, 9, 17):
            check_kernel_against_reference(dot_loop, ks, ddg, trip_count=trips)


class TestTimingEnforcement:
    def test_corrupted_schedule_raises_timing_violation(self, daxpy_loop, ideal16):
        ddg = build_loop_ddg(daxpy_loop)
        ks = modulo_schedule(daxpy_loop, ddg, ideal16)
        # sabotage: pull the fmul to issue before its load completes
        fmul_op = daxpy_loop.ops[2]
        bad_times = dict(ks.times)
        bad_times[fmul_op.op_id] = 1  # load latency is 2
        bad = KernelSchedule(
            machine=ideal16, loop=daxpy_loop, ii=ks.ii, times=bad_times
        )
        with pytest.raises(TimingViolation):
            run_pipelined(bad, ddg, trip_count=3)

    def test_wrong_value_detected_by_equivalence(self, daxpy_loop, ideal16):
        ddg = build_loop_ddg(daxpy_loop)
        ks = modulo_schedule(daxpy_loop, ddg, ideal16)
        # run against a DIFFERENT source loop -> mismatch must be caught
        other = make_kernel("dot")
        with pytest.raises((EquivalenceError, KeyError)):
            check_kernel_against_reference(other, ks, ddg, trip_count=4)


class TestPartitionedEquivalence:
    @pytest.mark.parametrize("name", ["daxpy", "dot", "lfk5_tridiag", "fir5",
                                      "cmul", "iprefix", "imax", "mixed"])
    def test_partitioned_kernels_equivalent(self, name, clustered_machine):
        from repro.core.pipeline import PipelineConfig, compile_loop

        loop = make_kernel(name)
        result = compile_loop(
            loop, clustered_machine, PipelineConfig(run_regalloc=False)
        )
        check_loop_equivalence(
            loop,
            result.partitioned,
            result.kernel,
            result.partitioned_ddg,
            clustered_machine,
            trip_count=5,
        )

    def test_preheader_copy_env(self, daxpy_loop):
        from repro.core.pipeline import PipelineConfig, compile_loop
        from repro.sim.values import seed_register

        m = paper_machine(8, CopyModel.EMBEDDED)
        result = compile_loop(daxpy_loop, m, PipelineConfig(run_regalloc=False))
        env = initial_registers_for(result.partitioned)
        for src, dst in result.partitioned.preheader_copies:
            assert env[dst.rid] == seed_register(src)


class TestMemoryVisibilityBoundary:
    """One visibility rule on both paths: ready at R => observable at >= R."""

    def _store_load_loop(self):
        from repro.ir.builder import LoopBuilder

        b = LoopBuilder("storeload")
        b.fstore("fa", "x")
        b.fload("f1", "x")
        b.live_in("fa")
        b.live_out("f1")
        return b.build()

    def _schedule(self, loop, ideal16, load_time):
        store = loop.ops[0]
        ddg = build_loop_ddg(loop)
        latency = ideal16.latency(store)
        ks = KernelSchedule(
            machine=ideal16,
            loop=loop,
            ii=latency + 1,
            times={store.op_id: 0, loop.ops[1].op_id: load_time},
        )
        return ks, ddg, latency

    def test_load_at_store_ready_cycle_sees_new_value(self, ideal16):
        from repro.sim.values import seed_register

        loop = self._store_load_loop()
        latency = ideal16.latency(loop.ops[0])
        ks, ddg, _ = self._schedule(loop, ideal16, load_time=latency)
        state = run_pipelined(ks, ddg, trip_count=1)
        fa = loop.factory.get("fa")
        f1 = loop.factory.get("f1")
        assert state.registers[f1.rid] == seed_register(fa)

    def test_load_one_cycle_early_sees_previous_contents(self, ideal16):
        from repro.sim.values import seed_memory, seed_register

        loop = self._store_load_loop()
        latency = ideal16.latency(loop.ops[0])
        ks, ddg, _ = self._schedule(loop, ideal16, load_time=latency - 1)
        state = run_pipelined(ks, ddg, trip_count=1)
        f1 = loop.factory.get("f1")
        fa = loop.factory.get("fa")
        assert state.registers[f1.rid] == seed_memory("x", 0, True)
        assert state.registers[f1.rid] != seed_register(fa)
        # the store still commits by the end of the pipeline
        assert state.memory[("x", 0)] == seed_register(fa)


class TestStateComparison:
    def test_store_counts_match_reference(self, daxpy_loop, ideal16):
        ddg = build_loop_ddg(daxpy_loop)
        ks = modulo_schedule(daxpy_loop, ddg, ideal16)
        ref = run_reference(daxpy_loop, trip_count=4)
        pipe = run_pipelined(ks, ddg, trip_count=4)
        assert ref.store_count == pipe.store_count

    def test_live_out_values_exposed(self, dot_loop, ideal16):
        ddg = build_loop_ddg(dot_loop)
        ks = modulo_schedule(dot_loop, ddg, ideal16)
        pipe = run_pipelined(ks, ddg, trip_count=5)
        f4 = dot_loop.factory.get("f4")
        ref = run_reference(dot_loop, trip_count=5)
        assert pipe.registers[f4.rid] == pytest.approx(ref.registers[f4.rid])
        assert pipe.live_out_values(dot_loop) == pytest.approx(
            ref.live_out_values(dot_loop)
        )
