"""Tests for the schedule container types themselves."""

import pytest

from repro.ddg.builder import build_loop_ddg
from repro.ir.builder import LoopBuilder
from repro.machine.presets import ideal_machine
from repro.sched.modulo.scheduler import modulo_schedule
from repro.sched.schedule import KernelSchedule, LinearSchedule


def tiny_loop():
    b = LoopBuilder("tiny")
    b.fload("f1", "x")
    b.fstore("f1", "y")
    return b.build()


class TestLinearSchedule:
    def test_missing_op_rejected(self):
        loop = tiny_loop()
        m = ideal_machine()
        with pytest.raises(ValueError, match="unscheduled"):
            LinearSchedule(machine=m, ops=list(loop.ops), times={})

    def test_lengths(self):
        loop = tiny_loop()
        m = ideal_machine()
        times = {loop.ops[0].op_id: 0, loop.ops[1].op_id: 2}
        sched = LinearSchedule(machine=m, ops=list(loop.ops), times=times)
        assert sched.issue_length == 3            # last issue at 2
        assert sched.length == 2 + 4              # store latency 4

    def test_instructions_iteration(self):
        loop = tiny_loop()
        m = ideal_machine()
        times = {loop.ops[0].op_id: 0, loop.ops[1].op_id: 2}
        sched = LinearSchedule(machine=m, ops=list(loop.ops), times=times)
        cycles = dict(sched.instructions())
        assert len(cycles[0]) == 1
        assert cycles[1] == []
        assert len(cycles[2]) == 1

    def test_empty_schedule(self):
        m = ideal_machine()
        sched = LinearSchedule(machine=m, ops=[], times={})
        assert sched.length == 0 and sched.issue_length == 0


class TestKernelSchedule:
    def test_bad_ii_rejected(self):
        loop = tiny_loop()
        m = ideal_machine()
        times = {op.op_id: 0 for op in loop.ops}
        with pytest.raises(ValueError):
            KernelSchedule(machine=m, loop=loop, ii=0, times=times)

    def test_negative_time_rejected(self):
        loop = tiny_loop()
        m = ideal_machine()
        times = {loop.ops[0].op_id: -1, loop.ops[1].op_id: 0}
        with pytest.raises(ValueError, match="negative"):
            KernelSchedule(machine=m, loop=loop, ii=1, times=times)

    def test_missing_op_rejected(self):
        loop = tiny_loop()
        m = ideal_machine()
        with pytest.raises(ValueError, match="missing"):
            KernelSchedule(machine=m, loop=loop, ii=1, times={})

    def test_flat_length_includes_latency(self):
        loop = tiny_loop()
        m = ideal_machine()
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        store = loop.ops[1]
        assert ks.flat_length == ks.time_of(store) + 4

    def test_ipc_definition(self):
        loop = tiny_loop()
        m = ideal_machine()
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        assert ks.ipc == len(loop.ops) / ks.ii
