"""Tests for Rau's iterative modulo scheduler."""

import pytest

from repro.ddg.analysis import min_ii
from repro.ddg.builder import build_loop_ddg
from repro.ir.builder import LoopBuilder
from repro.machine.machine import CopyModel
from repro.machine.presets import ideal_machine, paper_machine
from repro.sched.modulo.scheduler import ModuloScheduler, SchedulingError, modulo_schedule
from repro.sched.validate import validate_kernel_schedule
from repro.workloads.kernels import NAMED_KERNELS


class TestBasicScheduling:
    def test_achieves_min_ii_daxpy(self, daxpy_loop, ideal16):
        ddg = build_loop_ddg(daxpy_loop)
        ks = modulo_schedule(daxpy_loop, ddg, ideal16)
        validate_kernel_schedule(ks, ddg)
        assert ks.ii == 1

    def test_recurrence_bound(self, memrec_loop, ideal16):
        ddg = build_loop_ddg(memrec_loop)
        ks = modulo_schedule(memrec_loop, ddg, ideal16)
        validate_kernel_schedule(ks, ddg)
        assert ks.ii == 8

    def test_resource_bound_narrow_machine(self, daxpy_loop):
        m = ideal_machine(width=1)
        ddg = build_loop_ddg(daxpy_loop)
        ks = modulo_schedule(daxpy_loop, ddg, m)
        validate_kernel_schedule(ks, ddg)
        assert ks.ii == 5  # 5 ops on a 1-wide machine

    def test_all_named_kernels_schedule_at_min_ii(self, ideal16):
        for name, factory in NAMED_KERNELS.items():
            loop = factory()
            ddg = build_loop_ddg(loop)
            ks = modulo_schedule(loop, ddg, ideal16)
            validate_kernel_schedule(ks, ddg)
            assert ks.ii <= min_ii(ddg, ideal16) + 1, name

    def test_stats_populated(self, dot_loop, ideal16):
        ddg = build_loop_ddg(dot_loop)
        sched = ModuloScheduler(ideal16)
        ks = sched.schedule(dot_loop, ddg)
        assert sched.stats["rec_ii"] == 2
        assert sched.stats["achieved_ii"] == ks.ii
        assert sched.stats["min_ii"] <= ks.ii

    def test_empty_loop_rejected(self, ideal16):
        from repro.ddg.graph import DDG

        b = LoopBuilder("x")
        b.fload("f1", "a")
        loop = b.build()
        with pytest.raises(ValueError):
            ModuloScheduler(ideal16).schedule(loop, DDG(ops=[]))

    def test_max_ii_cap_raises(self, memrec_loop, ideal16):
        ddg = build_loop_ddg(memrec_loop)
        with pytest.raises(SchedulingError):
            modulo_schedule(memrec_loop, ddg, ideal16, max_ii=3)  # RecII is 8


class TestKernelScheduleProperties:
    def test_stage_count(self, daxpy_loop, ideal16):
        ddg = build_loop_ddg(daxpy_loop)
        ks = modulo_schedule(daxpy_loop, ddg, ideal16)
        # II=1, chain latency 2+2+2 -> ~7 stages deep
        assert ks.stage_count >= 5
        for op in daxpy_loop.ops:
            assert ks.stage_of(op) == ks.time_of(op) // ks.ii
            assert ks.row_of(op) == ks.time_of(op) % ks.ii

    def test_kernel_rows_cover_all_ops(self, dot_loop, ideal16):
        ddg = build_loop_ddg(dot_loop)
        ks = modulo_schedule(dot_loop, ddg, ideal16)
        rows = ks.kernel_rows()
        assert len(rows) == ks.ii
        assert sum(len(r) for r in rows) == len(dot_loop.ops)

    def test_total_cycles(self, dot_loop, ideal16):
        ddg = build_loop_ddg(dot_loop)
        ks = modulo_schedule(dot_loop, ddg, ideal16)
        assert ks.total_cycles(1) == ks.flat_length
        assert ks.total_cycles(5) == 4 * ks.ii + ks.flat_length
        assert ks.total_cycles(0) == 0

    def test_format_mentions_ii(self, dot_loop, ideal16):
        ddg = build_loop_ddg(dot_loop)
        ks = modulo_schedule(dot_loop, ddg, ideal16)
        assert f"II={ks.ii}" in ks.format()


class TestClusteredScheduling:
    def test_pinned_ops_respect_cluster_capacity(self):
        m = paper_machine(8, CopyModel.EMBEDDED)  # 2-wide clusters
        b = LoopBuilder("pin")
        for i in range(6):
            b.fload(f"f{i}", f"a{i}")
        loop = b.build()
        for op in loop.ops:
            op.cluster = 0
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        validate_kernel_schedule(ks, ddg)
        assert ks.ii == 3  # 6 loads on one 2-wide cluster

    def test_copy_unit_bus_contention(self):
        from repro.ir.operations import make_copy
        from repro.ir.block import BasicBlock, Loop
        from repro.ir.registers import RegisterFactory
        from repro.ir.types import DataType

        m = paper_machine(4, CopyModel.COPY_UNIT)  # 4 buses, 2 ports/cluster
        f = RegisterFactory()
        ops, live_in = [], set()
        for i in range(10):
            src = f.new(DataType.INT, name=f"s{i}")
            live_in.add(src)
            ops.append(make_copy(f.new(DataType.INT, name=f"d{i}"), src, cluster=i % 4))
        loop = Loop(name="buses", body=BasicBlock("b", ops), factory=f, live_in=live_in)
        ddg = build_loop_ddg(loop)
        ks = modulo_schedule(loop, ddg, m)
        validate_kernel_schedule(ks, ddg)
        assert ks.ii == 3  # 10 copies / 4 buses -> ceil = 3

    def test_ipc_counts_copies_only_when_embedded(self):
        from repro.ir.operations import make_copy
        from repro.ir.block import BasicBlock, Loop
        from repro.ir.registers import RegisterFactory
        from repro.ir.types import DataType

        for model, expected_ops in ((CopyModel.EMBEDDED, 2), (CopyModel.COPY_UNIT, 1)):
            m = paper_machine(2, model)
            f = RegisterFactory()
            src = f.new(DataType.FLOAT, name="fs")
            dst = f.new(DataType.FLOAT, name="fd")
            out = f.new(DataType.FLOAT, name="fo")
            cp = make_copy(dst, src, cluster=1)
            from repro.ir.operations import Opcode, Operation

            mul = Operation(opcode=Opcode.FMUL, dest=out, sources=(dst, dst))
            mul.cluster = 1
            loop = Loop(
                name="ipc", body=BasicBlock("b", [cp, mul]), factory=f,
                live_in={src}, live_out={out},
            )
            ddg = build_loop_ddg(loop)
            ks = modulo_schedule(loop, ddg, m)
            assert ks.counted_ops() == expected_ops, model
