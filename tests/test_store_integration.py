"""End-to-end tests for store-backed incremental recompilation.

The contract under test: a ``--store`` evaluation produces byte-for-byte
the reports of a store-less one (hot or cold, serial or parallel), and a
re-evaluation after editing one loop recompiles exactly that loop's
cells — everything else is answered from disk.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, compile_loop
from repro.evalx.report import render_full_report
from repro.evalx.runner import run_evaluation
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.store import ArtifactStore
from repro.workloads.corpus import spec95_corpus
from repro.workloads.kernels import make_kernel

N_LOOPS = 8
N_CONFIGS = 6
CONFIG = PipelineConfig(run_regalloc=True)


def _report_lines(run) -> list[str]:
    """The full report minus its wall-time line (the only nondeterminism)."""
    return [
        line
        for line in render_full_report(run).splitlines()
        if not line.startswith("corpus:")
    ]


@pytest.fixture(scope="module")
def corpus():
    return spec95_corpus(n=N_LOOPS)


@pytest.fixture(scope="module")
def baseline(corpus):
    """The store-less reference run every store-backed run must match."""
    return run_evaluation(corpus, config=CONFIG)


def test_cold_then_warm_runs_match_storeless(tmp_path, corpus, baseline):
    path = tmp_path / "store"
    cold = run_evaluation(corpus, config=CONFIG, store=ArtifactStore.open(path))
    assert cold.per_config == baseline.per_config
    assert _report_lines(cold) == _report_lines(baseline)
    assert cold.store_hits == 0
    assert cold.store_misses == N_LOOPS * N_CONFIGS
    assert cold.store_writes == N_LOOPS * N_CONFIGS

    warm = run_evaluation(corpus, config=CONFIG, store=ArtifactStore.open(path))
    assert warm.per_config == baseline.per_config
    assert _report_lines(warm) == _report_lines(baseline)
    assert warm.store_hits == N_LOOPS * N_CONFIGS
    assert warm.store_misses == 0
    assert warm.store_writes == 0
    # store hits skip the pipeline entirely, so the L0 memo sees nothing
    assert warm.cache_hits == 0 and warm.cache_misses == 0


def test_editing_one_loop_recompiles_exactly_its_cells(tmp_path, corpus):
    """The incremental-recompilation contract of the issue's demo."""
    path = tmp_path / "store"
    run_evaluation(corpus, config=CONFIG, store=ArtifactStore.open(path))

    # a real content change: "vscale" is not among the first N_LOOPS
    # corpus entries (the corpus prefix is the named kernels in
    # CORPUS_KERNELS order), so no stored entry matches it
    edited = list(corpus)
    edited[3] = make_kernel("vscale")
    reference = run_evaluation(edited, config=CONFIG)  # store-less truth

    warm = run_evaluation(edited, config=CONFIG, store=ArtifactStore.open(path))
    assert warm.store_misses == N_CONFIGS  # the edited loop, nothing else
    assert warm.store_hits == (N_LOOPS - 1) * N_CONFIGS
    assert warm.store_writes == N_CONFIGS
    assert warm.per_config == reference.per_config
    assert _report_lines(warm) == _report_lines(reference)

    # the recompiled cells are now stored too: a second pass is all-hit
    warm2 = run_evaluation(edited, config=CONFIG, store=ArtifactStore.open(path))
    assert warm2.store_misses == 0
    assert warm2.store_hits == N_LOOPS * N_CONFIGS


def test_parallel_and_serial_store_runs_agree(tmp_path, corpus, baseline):
    cold_path = tmp_path / "cold"
    pcold = run_evaluation(
        corpus, config=CONFIG, jobs=2, store=ArtifactStore.open(cold_path)
    )
    assert pcold.per_config == baseline.per_config
    assert _report_lines(pcold) == _report_lines(baseline)
    assert pcold.store_writes == N_LOOPS * N_CONFIGS

    # a serial warm run reads what the parallel workers wrote, and
    # vice versa: warm the parallel path from a serially-written store
    swarm = run_evaluation(
        corpus, config=CONFIG, store=ArtifactStore.open(cold_path)
    )
    assert swarm.store_hits == N_LOOPS * N_CONFIGS
    assert swarm.per_config == baseline.per_config

    pwarm = run_evaluation(
        corpus, config=CONFIG, jobs=2, store=ArtifactStore.open(cold_path)
    )
    assert pwarm.store_hits == N_LOOPS * N_CONFIGS
    assert pwarm.store_misses == 0
    assert pwarm.per_config == baseline.per_config


def test_store_outcomes_recorded_in_cell_metrics(tmp_path, corpus):
    path = tmp_path / "store"
    run_evaluation(corpus[:2], config=CONFIG, store=ArtifactStore.open(path))
    warm = run_evaluation(
        corpus[:2], config=CONFIG, store=ArtifactStore.open(path),
        collect_metrics=True,
    )
    assert len(warm.cell_metrics) == 2 * N_CONFIGS
    for snapshot in warm.cell_metrics.values():
        assert snapshot["counters"]["store.hits"] == 1
        assert snapshot["counters"]["store.misses"] == 0


def test_full_hydration_matches_fresh_compile_for_codegen(tmp_path):
    """The CLI's warm path: a hydrated result drives emit identically."""
    from repro.codegen import emit_assembly, emit_expanded

    loop = make_kernel("daxpy")
    machine = paper_machine(4, CopyModel.EMBEDDED)
    store = ArtifactStore.open(tmp_path / "store")
    cold = compile_loop(loop, machine, CONFIG, store=store)
    assert not cold.store_hit

    warm = compile_loop(make_kernel("daxpy"), machine, CONFIG, store=store)
    assert warm.store_hit
    assert emit_assembly(warm).text() == emit_assembly(cold).text()
    assert emit_expanded(warm, 6).text() == emit_expanded(cold, 6).text()


def test_corrupted_store_recovers_by_recompiling(tmp_path, corpus, baseline):
    path = tmp_path / "store"
    store = ArtifactStore.open(path)
    run_evaluation(corpus, config=CONFIG, store=store)

    # truncate one entry and bit-flip another, in place
    digests = store.disk.digests()
    victim_a = store.disk._path_for(digests[0])
    victim_a.write_bytes(victim_a.read_bytes()[: 100])
    victim_b = store.disk._path_for(digests[1])
    blob = bytearray(victim_b.read_bytes())
    blob[-10] ^= 0x40
    victim_b.write_bytes(bytes(blob))

    warm = run_evaluation(corpus, config=CONFIG, store=ArtifactStore.open(path))
    assert warm.store_invalid == 2
    assert warm.store_misses == 2  # both recompiled...
    assert warm.store_writes == 2  # ...and rewritten
    assert warm.store_hits == N_LOOPS * N_CONFIGS - 2
    assert warm.per_config == baseline.per_config  # results unharmed
    assert ArtifactStore.open(path).disk.verify().ok  # store healed


def test_cli_store_round_trip(tmp_path, capsys):
    """CLI surface: evaluate --store cold/warm + store stats/verify/gc."""
    from repro.cli import main

    store_dir = str(tmp_path / "store")
    assert main(["evaluate", "--quick", "4", "--store", store_dir]) == 0
    cold_out = capsys.readouterr().out
    assert main(["evaluate", "--quick", "4", "--store", store_dir]) == 0
    warm_out = capsys.readouterr().out
    strip = lambda text: [  # noqa: E731
        ln for ln in text.splitlines() if not ln.startswith("corpus:")
    ]
    assert strip(warm_out) == strip(cold_out)

    assert main(["store", "stats", store_dir]) == 0
    assert "entries: 24" in capsys.readouterr().out
    assert main(["store", "verify", store_dir]) == 0
    assert "all entries decode" in capsys.readouterr().out
    assert main(["store", "gc", store_dir, "--max-entries", "10"]) == 0
    assert "removed 14" in capsys.readouterr().out

    # corrupt an entry: verify flags it, --repair heals, evaluate rewrites
    disk = ArtifactStore.open(store_dir).disk
    victim = disk._path_for(disk.digests()[0])
    victim.write_bytes(b"garbage\n")
    assert main(["store", "verify", store_dir]) == 1
    assert main(["store", "verify", store_dir, "--repair"]) == 0
    capsys.readouterr()
    assert main(["evaluate", "--quick", "4", "--store", store_dir]) == 0
    assert strip(capsys.readouterr().out) == strip(cold_out)
