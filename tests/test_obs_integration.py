"""Observability under the parallel runner and checkpoint resume.

Traces must merge deterministically across worker processes (same span
identities as a serial run, keyed by loop id) and a resumed run must not
re-emit spans for cells already served from the checkpoint."""

import json

import pytest

from repro.core.pipeline import PipelineConfig
from repro.evalx.checkpoint import CheckpointLog
from repro.evalx.report import render_full_report
from repro.evalx.runner import PAPER_CONFIG_ORDER, config_label, run_evaluation
from repro.obs import Tracer
from repro.workloads.corpus import spec95_corpus

CONFIG = PipelineConfig(run_regalloc=False)
LABELS = [config_label(n, m) for n, m in PAPER_CONFIG_ORDER]


def span_identities(tracer: Tracer) -> list[tuple]:
    return sorted(s.identity() for s in tracer.spans)


def root_cells(tracer: Tracer) -> list[tuple[int, str]]:
    return [s.group_key() for s in tracer.spans if s.cat == "cell"]


class TestParallelTraceEquivalence:
    def test_serial_and_parallel_span_sets_identical(self):
        loops = spec95_corpus(n=6)
        serial_tracer, parallel_tracer = Tracer(), Tracer()
        run_evaluation(loops=loops, config=CONFIG, tracer=serial_tracer)
        run_evaluation(loops=loops, config=CONFIG, jobs=2,
                       tracer=parallel_tracer)
        assert span_identities(serial_tracer) == span_identities(parallel_tracer)
        assert sorted(root_cells(serial_tracer)) == sorted(
            (i, label) for i in range(len(loops)) for label in LABELS
        )

    def test_exactly_one_root_span_per_cell(self):
        loops = spec95_corpus(n=5)
        tracer = Tracer()
        run_evaluation(loops=loops, config=CONFIG, jobs=3, tracer=tracer)
        roots = root_cells(tracer)
        assert len(roots) == len(set(roots)) == len(loops) * len(LABELS)

    def test_disabled_tracer_records_nothing(self):
        from repro.obs import NULL_TRACER

        run = run_evaluation(loops=spec95_corpus(n=3), config=CONFIG,
                             tracer=NULL_TRACER)
        assert not run.failures  # and nothing blew up treating it as None


class TestCheckpointResumeTracing:
    @pytest.fixture()
    def truncated_checkpoint(self, tmp_path):
        """A full checkpoint cut down to its first 10 cells, simulating a
        run that died mid-flight."""
        loops = spec95_corpus(n=4)
        full = tmp_path / "full.jsonl"
        with CheckpointLog.fresh(full, loops, LABELS, CONFIG) as log:
            run_evaluation(loops=loops, config=CONFIG, checkpoint=log)
        lines = full.read_text().splitlines()
        kept = lines[:1 + 10]  # header + 10 cells
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(kept) + "\n")
        done = [json.loads(line) for line in kept[1:]]
        done_keys = {(d["loop_index"], d["config"]) for d in done}
        return loops, partial, done_keys

    def test_resume_emits_spans_only_for_missing_cells(self, truncated_checkpoint):
        loops, partial, done_keys = truncated_checkpoint
        tracer = Tracer()
        with CheckpointLog.resume(partial, loops, LABELS, CONFIG) as log:
            run = run_evaluation(loops=loops, config=CONFIG, checkpoint=log,
                                 tracer=tracer)
        assert run.resumed_cells == len(done_keys)
        all_keys = {(i, label) for i in range(len(loops)) for label in LABELS}
        roots = root_cells(tracer)
        assert len(roots) == len(set(roots)), "duplicate cell spans"
        assert set(roots) == all_keys - done_keys

    def test_resumed_tables_byte_identical_to_uninterrupted(self, truncated_checkpoint):
        loops, partial, _done = truncated_checkpoint
        clean = run_evaluation(loops=loops, config=CONFIG)
        with CheckpointLog.resume(partial, loops, LABELS, CONFIG) as log:
            resumed = run_evaluation(loops=loops, config=CONFIG, checkpoint=log,
                                     tracer=Tracer(), jobs=2)
        clean_report = render_full_report(clean)
        resumed_report = render_full_report(resumed)
        # only the wall-time line may differ
        diff = [
            (a, b)
            for a, b in zip(clean_report.splitlines(), resumed_report.splitlines())
            if a != b
        ]
        assert all("wall time" in a for a, _b in diff)


class TestCheckpointMetrics:
    def test_resume_collects_metrics_only_for_fresh_cells(self, tmp_path):
        loops = spec95_corpus(n=3)
        path = tmp_path / "ckpt.jsonl"
        with CheckpointLog.fresh(path, loops, LABELS, CONFIG) as log:
            first = run_evaluation(loops=loops[:3], config=CONFIG, checkpoint=log,
                                   collect_metrics=True)
        assert len(first.cell_metrics) == 3 * len(LABELS)
        with CheckpointLog.resume(path, loops, LABELS, CONFIG) as log:
            resumed = run_evaluation(loops=loops, config=CONFIG, checkpoint=log,
                                     collect_metrics=True)
        # everything was already recorded: no compilation, no snapshots
        assert resumed.resumed_cells == 3 * len(LABELS)
        assert resumed.cell_metrics == {}
        assert render_full_report(resumed).splitlines()[5:] == \
            render_full_report(first).splitlines()[5:]
