"""Cross-stage oracles: clean artifacts pass, sabotaged artifacts fail."""

from __future__ import annotations

import pytest

from repro.check.oracles import (
    ORACLES,
    OracleViolation,
    run_oracles,
    subject_from_result,
)
from repro.core.pipeline import PipelineConfig, compile_loop
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.sched.modulo.kernel import PipelineExpansion


@pytest.fixture
def compiled_dot(dot_loop):
    machine = paper_machine(2, CopyModel.EMBEDDED)
    return compile_loop(dot_loop, machine, PipelineConfig())


@pytest.fixture
def dot_subject(compiled_dot):
    return subject_from_result(compiled_dot)


def test_registry_has_all_five_oracles():
    assert set(ORACLES) == {
        "semantic_equivalence",
        "phase_partition",
        "rotating_allocation",
        "copy_consistency",
        "schedule_validation",
    }


def test_clean_compilation_passes_all_oracles(dot_subject):
    assert run_oracles(dot_subject) == []


def test_clean_compilation_passes_on_all_machines(daxpy_loop, clustered_machine):
    result = compile_loop(daxpy_loop, clustered_machine, PipelineConfig())
    assert run_oracles(subject_from_result(result)) == []


def test_only_filter_restricts_oracles(dot_subject):
    violations = run_oracles(dot_subject, only=("phase_partition",))
    assert violations == []


def test_memory_recurrence_passes(memrec_loop):
    machine = paper_machine(4, CopyModel.COPY_UNIT)
    result = compile_loop(memrec_loop, machine, PipelineConfig())
    assert run_oracles(subject_from_result(result)) == []


# ----------------------------------------------------------------------
# sabotage: each oracle must catch its own class of corruption
# ----------------------------------------------------------------------


def _buggy_expand_pipeline(kernel, trip_count):
    """The pre-fix ``expand_pipeline``: dead assignment then an off-by-
    stages postlude boundary (the satellite bug this PR removes)."""
    from repro.sched.modulo.kernel import IssueSlot

    slots = []
    for k in range(trip_count):
        base = k * kernel.ii
        for op in kernel.loop.ops:
            slots.append(
                IssueSlot(cycle=base + kernel.time_of(op), op=op, iteration=k)
            )
    slots.sort(key=lambda s: (s.cycle, s.op.op_id))
    stages = kernel.stage_count
    prelude_end = (stages - 1) * kernel.ii
    postlude_start = prelude_end + trip_count * kernel.ii  # dead assignment
    postlude_start = (trip_count - 1 + stages - 1) * kernel.ii
    return PipelineExpansion(
        kernel=kernel,
        trip_count=trip_count,
        slots=slots,
        prelude_end=min(prelude_end, kernel.total_cycles(trip_count)),
        postlude_start=min(postlude_start, kernel.total_cycles(trip_count)),
    )


def test_phase_oracle_catches_reintroduced_expansion_bug(
    dot_subject, monkeypatch
):
    monkeypatch.setattr(
        "repro.check.oracles.expand_pipeline", _buggy_expand_pipeline
    )
    violations = run_oracles(dot_subject, only=("phase_partition",))
    assert violations, "phase oracle missed the reintroduced boundary bug"
    assert violations[0].oracle == "phase_partition"


def test_semantic_oracle_catches_dataflow_corruption(compiled_dot):
    subject = subject_from_result(compiled_dot)
    # rewire the partitioned fmul to square its first operand: the kernel
    # executes different dataflow than the source loop
    fmul = next(op for op in subject.partitioned.loop.ops if op.opcode.value == "fmul")
    fmul.sources = (fmul.sources[0], fmul.sources[0])
    violations = run_oracles(subject, only=("semantic_equivalence",))
    assert violations and violations[0].oracle == "semantic_equivalence"


def test_copy_oracle_catches_missing_copy(compiled_dot):
    subject = subject_from_result(compiled_dot)
    assert subject.partitioned.body_copies, "need a cross-bank copy to drop"
    subject.partitioned.body_copies.pop()
    violations = run_oracles(subject, only=("copy_consistency",))
    assert violations and violations[0].oracle == "copy_consistency"
    assert "demands" in violations[0].detail


def test_rotating_oracle_catches_broken_conflict_test(dot_subject, monkeypatch):
    # an allocator that believes nothing ever conflicts packs every value
    # into offset 0; the occupancy walk (or the brute-force cross-check)
    # must call that out
    monkeypatch.setattr(
        "repro.regalloc.rotating._conflicts", lambda *a, **k: False
    )
    violations = run_oracles(dot_subject, only=("rotating_allocation",))
    assert violations and violations[0].oracle == "rotating_allocation"


def test_schedule_oracle_catches_dependence_violation(compiled_dot):
    subject = subject_from_result(compiled_dot)
    # pretend the partitioned kernel satisfies the *ideal* loop's DDG: the
    # op sets differ, so the independent validator must object
    subject.partitioned_ddg = subject.ddg
    violations = run_oracles(subject, only=("schedule_validation",))
    assert violations and violations[0].oracle == "schedule_validation"


def test_oracle_crash_is_reported_not_raised(dot_subject, monkeypatch):
    def exploding(subject):
        raise RuntimeError("oracle bug")

    monkeypatch.setitem(ORACLES, "phase_partition", exploding)
    violations = run_oracles(dot_subject, only=("phase_partition",))
    assert violations and "oracle crashed" in violations[0].detail


# ----------------------------------------------------------------------
# pipeline integration: the opt-in CheckOracles pass
# ----------------------------------------------------------------------


def test_pipeline_check_mode_passes_clean_loop(daxpy_loop):
    machine = paper_machine(2, CopyModel.EMBEDDED)
    result = compile_loop(daxpy_loop, machine, PipelineConfig(run_check=True))
    assert result.metrics is not None


def test_pipeline_check_mode_raises_oracle_violation(dot_loop, monkeypatch):
    monkeypatch.setattr(
        "repro.check.oracles.expand_pipeline", _buggy_expand_pipeline
    )
    machine = paper_machine(2, CopyModel.EMBEDDED)
    with pytest.raises(OracleViolation):
        compile_loop(dot_loop, machine, PipelineConfig(run_check=True))


def test_check_mode_off_by_default(dot_loop, monkeypatch):
    # without run_check the sabotaged expansion is never consulted
    monkeypatch.setattr(
        "repro.check.oracles.expand_pipeline", _buggy_expand_pipeline
    )
    machine = paper_machine(2, CopyModel.EMBEDDED)
    result = compile_loop(dot_loop, machine, PipelineConfig())
    assert result.metrics is not None
