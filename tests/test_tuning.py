"""Tests for the heuristic auto-tuner (paper Section 7 future work)."""


import pytest

from repro.core.tuning import (
    PARAMETER_SPACE,
    describe_config,
    evaluate_config,
    tune_heuristic,
)
from repro.core.weights import HeuristicConfig
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.workloads.synthetic import PROFILES, SyntheticLoopGenerator


@pytest.fixture(scope="module")
def training_loops():
    gen = SyntheticLoopGenerator(777)
    names = sorted(PROFILES)
    return [gen.generate(f"tr_{i}", PROFILES[names[i % len(names)]]) for i in range(6)]


@pytest.fixture(scope="module")
def machine():
    return paper_machine(4, CopyModel.EMBEDDED)


class TestEvaluateConfig:
    def test_objective_at_least_100(self, training_loops, machine):
        obj = evaluate_config(training_loops, machine, HeuristicConfig())
        assert obj >= 100.0

    def test_deterministic(self, training_loops, machine):
        a = evaluate_config(training_loops, machine, HeuristicConfig())
        b = evaluate_config(training_loops, machine, HeuristicConfig())
        assert a == b


class TestTuneHeuristic:
    def test_never_worse_than_incumbent(self, training_loops, machine):
        result = tune_heuristic(training_loops, machine, n_trials=4, seed=5)
        assert result.best_objective <= result.incumbent_objective
        assert result.improvement >= 0

    def test_history_complete(self, training_loops, machine):
        result = tune_heuristic(training_loops, machine, n_trials=4, seed=5)
        assert len(result.history) == 5  # incumbent + 4 trials
        assert result.history[0].kind == "incumbent"
        assert all(t.kind in ("incumbent", "random", "perturb") for t in result.history)
        assert result.best_objective == min(t.objective for t in result.history)

    def test_deterministic_per_seed(self, training_loops, machine):
        r1 = tune_heuristic(training_loops, machine, n_trials=3, seed=9)
        r2 = tune_heuristic(training_loops, machine, n_trials=3, seed=9)
        assert r1.best_objective == r2.best_objective
        assert [t.objective for t in r1.history] == [t.objective for t in r2.history]

    def test_zero_trials_rejected(self, training_loops, machine):
        with pytest.raises(ValueError):
            tune_heuristic(training_loops, machine, n_trials=0)

    def test_sampled_configs_within_ranges(self, training_loops, machine):
        result = tune_heuristic(training_loops, machine, n_trials=6, seed=2)
        for trial in result.history[1:]:
            for name, (lo, hi) in PARAMETER_SPACE.items():
                value = getattr(trial.config, name)
                assert lo - 1e-9 <= value <= hi + 1e-9, (name, value)

    def test_describe_config_mentions_all_parameters(self):
        text = describe_config(HeuristicConfig())
        for name in PARAMETER_SPACE:
            assert name in text


class TestTuningTimeout:
    def test_timed_out_trial_scores_inf(self, training_loops, machine, monkeypatch):
        import math
        import time

        def sleepy(loop, machine_, config, cache=None):
            time.sleep(30)

        monkeypatch.setattr("repro.core.tuning.compile_loop", sleepy)
        objective = evaluate_config(
            training_loops[:1], machine, HeuristicConfig(), timeout_seconds=0.2
        )
        assert objective == math.inf

    def test_generous_timeout_matches_untimed(self, training_loops, machine):
        untimed = evaluate_config(training_loops[:2], machine, HeuristicConfig())
        timed = evaluate_config(
            training_loops[:2], machine, HeuristicConfig(), timeout_seconds=300.0
        )
        assert timed == untimed
