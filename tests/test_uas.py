"""Tests for the UAS (unified assign-and-schedule) baseline."""

import statistics

import pytest

from repro.core.pipeline import PipelineConfig, compile_loop
from repro.core.uas import uas_partition
from repro.ddg.builder import build_loop_ddg
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.sched.validate import validate_kernel_schedule
from repro.workloads.kernels import NAMED_KERNELS, make_kernel
from repro.workloads.synthetic import PROFILES, SyntheticLoopGenerator


class TestUASPartition:
    def test_totality(self, daxpy_loop):
        m = paper_machine(4, CopyModel.EMBEDDED)
        ddg = build_loop_ddg(daxpy_loop)
        part = uas_partition(daxpy_loop, ddg, m)
        for reg in daxpy_loop.registers():
            assert 0 <= part.bank_of(reg) < 4

    def test_deterministic(self, dot_loop):
        m = paper_machine(4, CopyModel.EMBEDDED)
        ddg = build_loop_ddg(dot_loop)
        p1 = uas_partition(dot_loop, ddg, m)
        p2 = uas_partition(dot_loop, ddg, m)
        assert p1.assignment == p2.assignment

    def test_serial_chain_stays_together(self, daxpy_loop):
        """Cross-cluster operands pay copy latency inside UAS's estart, so
        a pure dependence chain never profits from moving."""
        m = paper_machine(2, CopyModel.EMBEDDED)
        ddg = build_loop_ddg(daxpy_loop)
        part = uas_partition(daxpy_loop, ddg, m)
        f = daxpy_loop.factory
        assert part.bank_of(f.get("f3")) == part.bank_of(f.get("f4"))

    def test_parallel_work_spreads(self):
        loop = make_kernel("daxpy4")  # 4 independent daxpy bodies
        m = paper_machine(4, CopyModel.EMBEDDED)
        ddg = build_loop_ddg(loop)
        part = uas_partition(loop, ddg, m)
        assert len(set(part.assignment.values())) >= 2

    @pytest.mark.parametrize("name", sorted(NAMED_KERNELS))
    def test_all_kernels_compile_through_pipeline(self, name):
        m = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(
            make_kernel(name), m, PipelineConfig(partitioner="uas", run_regalloc=False)
        )
        validate_kernel_schedule(result.kernel, result.partitioned_ddg)
        assert result.metrics.partitioned_ii >= 1


class TestUASQuality:
    def test_uas_beats_bug_on_average(self):
        """Ozer et al.'s core claim (paper Section 3): "UAS performs
        better than BUG"."""
        m = paper_machine(4, CopyModel.EMBEDDED)
        gen = SyntheticLoopGenerator(1234)
        loops = [
            gen.generate(f"uasq_{i}", PROFILES[p])
            for i, p in enumerate(
                ["parallel", "reduction", "recurrence", "parallel", "simple"] * 4
            )
        ]
        means = {}
        for which in ("uas", "bug"):
            vals = []
            for loop in loops:
                r = compile_loop(
                    loop, m, PipelineConfig(partitioner=which, run_regalloc=False)
                )
                vals.append(r.metrics.normalized_kernel)
            means[which] = statistics.mean(vals)
        assert means["uas"] <= means["bug"] + 1.0

    def test_uas_competitive_with_greedy(self):
        m = paper_machine(4, CopyModel.EMBEDDED)
        gen = SyntheticLoopGenerator(99)
        loops = [gen.generate(f"c_{i}", PROFILES["parallel"]) for i in range(10)]
        means = {}
        for which in ("uas", "greedy"):
            vals = [
                compile_loop(
                    l, m, PipelineConfig(partitioner=which, run_regalloc=False)
                ).metrics.normalized_kernel
                for l in loops
            ]
            means[which] = statistics.mean(vals)
        # within 25 normalized points either way
        assert abs(means["uas"] - means["greedy"]) <= 25.0

    def test_uas_equivalence_checked(self):
        from repro.sim.equivalence import check_loop_equivalence

        m = paper_machine(4, CopyModel.COPY_UNIT)
        loop = make_kernel("lfk1_hydro")
        result = compile_loop(
            loop, m, PipelineConfig(partitioner="uas", run_regalloc=False)
        )
        check_loop_equivalence(
            loop, result.partitioned, result.kernel, result.partitioned_ddg,
            m, trip_count=5,
        )
