"""Tests for the baseline partitioners (BUG, random, round-robin, single)."""


from repro.core.baselines import (
    bug_partition,
    random_partition,
    round_robin_partition,
    single_bank_partition,
)
from repro.core.pipeline import PipelineConfig, compile_loop
from repro.ddg.builder import build_loop_ddg
from repro.machine.machine import CopyModel
from repro.machine.presets import paper_machine
from repro.workloads.kernels import make_kernel


class TestNaiveBaselines:
    def test_single_bank_totality(self, daxpy_loop):
        p = single_bank_partition(daxpy_loop, 4)
        assert len(p) == len(daxpy_loop.registers())
        assert all(b == 0 for b in p.assignment.values())

    def test_round_robin_spreads(self, daxpy_loop):
        p = round_robin_partition(daxpy_loop, 3)
        sizes = p.bank_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_random_deterministic_per_seed(self, daxpy_loop):
        p1 = random_partition(daxpy_loop, 4, seed=7)
        p2 = random_partition(daxpy_loop, 4, seed=7)
        assert p1.assignment == p2.assignment

    def test_random_differs_across_seeds(self):
        loop = make_kernel("lfk7_state")
        p1 = random_partition(loop, 4, seed=1)
        p2 = random_partition(loop, 4, seed=2)
        assert p1.assignment != p2.assignment


class TestBUG:
    def test_totality(self, daxpy_loop):
        m = paper_machine(4, CopyModel.EMBEDDED)
        ddg = build_loop_ddg(daxpy_loop)
        p = bug_partition(daxpy_loop, ddg, m)
        assert len(p) == len(daxpy_loop.registers())

    def test_dependent_chain_colocates(self, daxpy_loop):
        """BUG keeps a serial chain on one cluster: moving any link pays
        copy latency with no parallelism gain."""
        m = paper_machine(2, CopyModel.EMBEDDED)
        ddg = build_loop_ddg(daxpy_loop)
        p = bug_partition(daxpy_loop, ddg, m)
        f = daxpy_loop.factory
        assert p.bank_of(f.get("f3")) == p.bank_of(f.get("f4"))

    def test_parallel_chains_spread(self):
        loop = make_kernel("cmul")  # two independent result trees
        m = paper_machine(2, CopyModel.EMBEDDED)
        ddg = build_loop_ddg(loop)
        p = bug_partition(loop, ddg, m)
        assert len(set(p.assignment.values())) == 2

    def test_compiles_through_pipeline(self):
        loop = make_kernel("lfk1_hydro")
        m = paper_machine(4, CopyModel.EMBEDDED)
        result = compile_loop(loop, m, PipelineConfig(partitioner="bug", run_regalloc=False))
        assert result.metrics.partitioned_ii >= result.metrics.ideal_ii


class TestBaselineComparison:
    def test_greedy_not_worse_than_random_on_average(self):
        """Over a handful of kernels, the RCG greedy should beat random
        placement in total degradation — the paper's whole premise."""
        m = paper_machine(4, CopyModel.EMBEDDED)
        kernels = ["daxpy", "dot", "fir5", "lfk1_hydro", "cmul", "jacobi3", "horner4"]
        total = {"greedy": 0, "random": 0}
        for name in kernels:
            for which in ("greedy", "random"):
                res = compile_loop(
                    make_kernel(name),
                    m,
                    PipelineConfig(partitioner=which, run_regalloc=False, seed=3),
                )
                total[which] += res.metrics.partitioned_ii
        assert total["greedy"] <= total["random"]

    def test_single_bank_serializes(self):
        """Everything in one bank leaves N-1 clusters idle: II inflates by
        about the cluster count on resource-bound loops."""
        m = paper_machine(4, CopyModel.EMBEDDED)
        loop = make_kernel("daxpy4")  # 20 parallel ops
        res = compile_loop(loop, m, PipelineConfig(partitioner="single", run_regalloc=False))
        assert res.metrics.partitioned_ii >= 2 * res.metrics.ideal_ii
