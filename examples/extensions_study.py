#!/usr/bin/env python3
"""The paper's future-work directions, implemented and measured.

Section 6.3 and Section 7 sketch four follow-ons; this script runs all of
them on a corpus slice and prints the effect of each:

1. **iteration on the partition** (Nystrom/Eichenberger's phase, which
   the paper calls the step after its greedy) — mean degradation and
   zero-degradation share, greedy vs greedy+iteration;
2. **Swing modulo scheduling** (lifetime-sensitive; the scheduler the
   comparison work used) — II and register pressure vs Rau's IMS;
3. **loop unrolling** (more data-independent parallelism in innermost
   loops) — per-original-iteration cost at x1/x2/x4;
4. **stochastic heuristic tuning** — random-search over the "ad hoc"
   weighting constants on a training set.

Run:  python examples/extensions_study.py
"""

import statistics

from repro.core import PipelineConfig, compile_loop
from repro.core.tuning import describe_config, tune_heuristic
from repro.ddg import build_loop_ddg
from repro.machine import CopyModel, ideal_machine, paper_machine
from repro.regalloc import build_interference, cyclic_liveness, plan_mve
from repro.sched import modulo_schedule, swing_modulo_schedule
from repro.transform import unroll_loop
from repro.workloads import make_kernel, spec95_corpus
from repro.workloads.synthetic import PROFILES, SyntheticLoopGenerator


def study_iteration(loops, machine):
    print("1. partition iteration (4x4 embedded, ideal = 100)")
    for which in ("greedy", "iterative"):
        vals, zero = [], 0
        for loop in loops:
            r = compile_loop(loop, machine, PipelineConfig(partitioner=which, run_regalloc=False))
            vals.append(r.metrics.normalized_kernel)
            zero += r.metrics.zero_degradation
        print(f"   {which:10s} mean {statistics.mean(vals):6.1f}   "
              f"zero-degradation {100 * zero / len(loops):.0f}%")


def study_swing(loops):
    print("\n2. scheduler: IMS vs Swing (ideal 16-wide)")
    m = ideal_machine()
    for label, scheduler in (("IMS", modulo_schedule), ("Swing", swing_modulo_schedule)):
        iis, pressure = [], []
        for loop in loops:
            ddg = build_loop_ddg(loop)
            ks = scheduler(loop, ddg, m)
            liv = cyclic_liveness(ks, ddg)
            pressure.append(build_interference(plan_mve(liv)).max_clique_lower_bound())
            iis.append(ks.ii)
        print(f"   {label:6s} mean II {statistics.mean(iis):5.2f}   "
              f"mean MaxLive {statistics.mean(pressure):5.1f}")


def study_unrolling(machine):
    print("\n3. unrolling (recurrence kernels, 4x4 embedded)")
    kernels = ("lfk5_tridiag", "lfk11_psum", "dot", "rec_d2")
    for factor in (1, 2, 4):
        per_iter = []
        for name in kernels:
            loop = unroll_loop(make_kernel(name), factor)
            r = compile_loop(loop, machine, PipelineConfig(run_regalloc=False))
            per_iter.append(r.metrics.partitioned_ii / factor)
        print(f"   x{factor}: II per original iteration "
              f"{statistics.mean(per_iter):5.2f}")


def study_tuning(machine):
    print("\n4. stochastic heuristic tuning (12 training loops, 8 trials)")
    gen = SyntheticLoopGenerator(4242)
    names = sorted(PROFILES)
    training = [gen.generate(f"tr_{i}", PROFILES[names[i % len(names)]]) for i in range(12)]
    result = tune_heuristic(training, machine, n_trials=8, seed=7)
    print(f"   incumbent {result.incumbent_objective:6.1f} -> "
          f"tuned {result.best_objective:6.1f} ({result.improvement:+.1f})")
    print(f"   best: {describe_config(result.best_config)}")


def main() -> None:
    machine = paper_machine(4, CopyModel.EMBEDDED)
    loops = spec95_corpus()[:50]
    study_iteration(loops, machine)
    study_swing(loops)
    study_unrolling(machine)
    study_tuning(machine)


if __name__ == "__main__":
    main()
