#!/usr/bin/env python3
"""Explore the machine-design space for one kernel.

The paper's Section 6.1 fixes a 16-wide meta-model; this script varies
the knobs — cluster count, copy model, copy ports, buses and copy
latencies — for a single kernel and shows how the achieved II, the copy
count and the register pressure respond.  Useful for building intuition
about why the embedded and copy-unit models cross over between 2 and 8
clusters.

Run:  python examples/machine_explorer.py [kernel]
      (kernels: see repro.workloads.NAMED_KERNELS; default lfk1_hydro)
"""

import sys

from repro.core import PipelineConfig, compile_loop
from repro.machine import CopyModel, paper_machine
from repro.machine.latency import PAPER_LATENCIES
from repro.workloads import NAMED_KERNELS, make_kernel


def row(machine, loop):
    result = compile_loop(loop, machine, PipelineConfig(run_regalloc=True))
    m = result.metrics
    return (
        f"  {machine.describe():34s} II {m.ideal_ii:>2} -> {m.partitioned_ii:>2} "
        f"({m.degradation_pct:+4.0f}%)  copies {m.n_body_copies:>2}  "
        f"pressure {m.max_bank_pressure:>2}  unroll x{result.bank_assignment.unroll}"
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lfk1_hydro"
    if name not in NAMED_KERNELS:
        raise SystemExit(f"unknown kernel {name!r}; pick from {sorted(NAMED_KERNELS)}")

    print(f"kernel: {name}\n")

    print("cluster count sweep (paper's six configurations):")
    for n in (2, 4, 8):
        for model in (CopyModel.EMBEDDED, CopyModel.COPY_UNIT):
            print(row(paper_machine(n, model), make_kernel(name)))

    print("\ncopy-unit bandwidth sweep (4 clusters):")
    for ports, buses in ((1, 1), (1, 4), (2, 4), (4, 8)):
        machine = paper_machine(
            4, CopyModel.COPY_UNIT, copy_ports=ports, n_buses=buses
        )
        print(row(machine, make_kernel(name)))

    print("\ninter-cluster copy latency sweep (4 clusters, embedded):")
    for int_lat, fp_lat in ((1, 1), (2, 3), (4, 6)):
        lat = PAPER_LATENCIES.replaced(copy_int=int_lat, copy_float=fp_lat)
        machine = paper_machine(4, CopyModel.EMBEDDED, latencies=lat)
        print(row(machine, make_kernel(name)))


if __name__ == "__main__":
    main()
