#!/usr/bin/env python3
"""Whole-function partitioning (the paper's Sections 5 and 7 claim).

The RCG framework "is easily applicable to entire programs, since we
could easily use both non-loop and loop code to build our register
component graph".  This script builds a small multi-block function —
an entry block, a hot inner block, and an exit block sharing values —
accumulates one function-wide RCG from the per-block ideal schedules
(each weighted by nesting depth), partitions once, and reports the
depth-weighted degradation on the 4-wide 4-cluster machine of the
authors' earlier whole-program study.

Run:  python examples/whole_function.py
"""

from repro.core.wholefn import compile_function
from repro.ir import Function, LoopBuilder, MemRef, Opcode
from repro.machine import prior_work_machine_4wide


def build_function() -> Function:
    fn = Function("saxpy_driver")

    entry = LoopBuilder("entry", depth=0)
    entry.load("r1", "n", scalar=True)
    entry.shl("r2", "r1", 3)
    entry.load("r3", "alpha_bits", scalar=True)
    entry.store("r2", "bytecount", scalar=True)
    fn.add_block(entry.build_block(depth=0))

    body = LoopBuilder("body", depth=1)
    body.fload("f1", "x")
    body.fload("f2", "y")
    body.fmul("f3", "f1", "falpha")
    body.fadd("f4", "f3", "f2")
    body.fstore("f4", "y")
    body.fadd("f5", "f5", "f4")  # running checksum
    fn.add_block(body.build_block(depth=1))

    exit_ = LoopBuilder("exit", depth=0)
    f5 = body.factory.get("f5")
    exit_.emit(Opcode.FSTORE, None, (f5,), MemRef("checksum", scalar=True))
    fn.add_block(exit_.build_block(depth=0))
    return fn


def main() -> None:
    fn = build_function()
    machine = prior_work_machine_4wide()
    print(f"function: {fn.name} ({fn.n_operations} ops in {len(fn.blocks)} blocks)")
    print(f"machine:  {machine.describe()} ({machine.width}-wide)\n")

    result = compile_function(fn, machine)

    print("partition:")
    for bank in machine.clusters:
        regs = result.partition.registers_in_bank(bank)
        if regs:
            print(f"  bank {bank}: {', '.join(r.name for r in regs)}")

    print("\nper-block schedules (ideal -> clustered cycles):")
    for block in fn.blocks:
        ideal = result.ideal_schedules[block.name]
        clustered = result.clustered_schedules[block.name]
        print(f"  {block.name:14s} depth {block.depth}:  "
              f"{ideal.length:>2} -> {clustered.length:>2}")
        for line in clustered.format().splitlines():
            print(f"      {line}")

    print(f"\ncopies inserted: {result.n_copies} "
          f"({result.n_entry_copies} at block entries)")
    print(f"depth-weighted degradation: {result.degradation_pct:.1f}% "
          "(the authors' whole-program study found ~11% on this machine)")


if __name__ == "__main__":
    main()
