#!/usr/bin/env python3
"""Quickstart: compile one loop for a clustered VLIW, end to end.

Builds a DAXPY loop, runs the paper's five-step pipeline (ideal modulo
schedule -> RCG -> greedy bank partition -> copy insertion + clustered
reschedule -> per-bank Chaitin/Briggs assignment), validates the result
against a cycle-accurate simulation, and prints every artifact.

Run:  python examples/quickstart.py
"""

from repro.core import PipelineConfig, compile_loop
from repro.ir import LoopBuilder, format_loop
from repro.machine import CopyModel, paper_machine


def build_daxpy():
    """y[i] = a * x[i] + y[i], with `a` loop-invariant."""
    b = LoopBuilder("daxpy", trip_count_hint=8)
    b.fload("f1", "x")
    b.fload("f2", "y")
    b.fmul("f3", "f1", "fa")
    b.fadd("f4", "f3", "f2")
    b.fstore("f4", "y")
    b.live_in("fa")
    return b.build()


def main() -> None:
    loop = build_daxpy()
    print("=== source loop ===")
    print(format_loop(loop))

    machine = paper_machine(n_clusters=2, copy_model=CopyModel.EMBEDDED)
    print(f"\n=== target machine: {machine.describe()} ===")

    result = compile_loop(loop, machine, PipelineConfig(run_simulation=True))
    m = result.metrics

    print("\n=== ideal (monolithic-bank) kernel ===")
    print(result.ideal.format())

    print("\n=== register component graph ===")
    for a, b_, w in result.rcg.edges():
        kind = "affinity" if w > 0 else "anti-affinity"
        print(f"  {a} -- {b_}: {w:+.2f} ({kind})")

    print("\n=== bank partition ===")
    for bank in range(machine.n_clusters):
        regs = result.partition.registers_in_bank(bank)
        if regs:
            print(f"  bank {bank}: {', '.join(r.name for r in regs)}")

    print("\n=== partitioned loop (copies inserted, ops pinned) ===")
    print(format_loop(result.partitioned.loop))

    print("\n=== clustered kernel ===")
    print(result.kernel.format())

    print("\n=== physical register assignment ===")
    ba = result.bank_assignment
    print(f"  kernel unrolled x{ba.unroll} for modulo variable expansion")
    for (rid, rep), (bank, idx) in sorted(ba.physical.items())[:12]:
        print(f"  vreg {rid} replica {rep} -> b{bank}.r{idx}")

    print("\n=== metrics ===")
    print(f"  ideal II           {m.ideal_ii}  (IPC {m.ideal_ipc:.2f})")
    print(f"  partitioned II     {m.partitioned_ii}  (IPC {m.partitioned_ipc:.2f})")
    print(f"  copies             {m.n_body_copies} in-kernel, "
          f"{m.n_preheader_copies} preheader")
    print(f"  degradation        {m.degradation_pct:.0f}% "
          f"(normalized kernel {m.normalized_kernel:.0f}, ideal = 100)")
    print(f"  simulator checked  {m.sim_checked}")


if __name__ == "__main__":
    main()
