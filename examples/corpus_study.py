#!/usr/bin/env python3
"""Regenerate the paper's full evaluation (Tables 1-2, Figures 5-7).

Software-pipelines the 211-loop corpus for all six clustered machine
configurations and prints the complete Section 6 report with the paper's
published numbers inline.

Run:  python examples/corpus_study.py          # full 211-loop corpus
      python examples/corpus_study.py --quick  # 40-loop subset (~1s)
"""

import argparse

from repro.core import PipelineConfig
from repro.evalx import render_full_report, run_evaluation
from repro.workloads import corpus_summary, spec95_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run a 40-loop subset"
    )
    parser.add_argument(
        "--regalloc",
        action="store_true",
        help="also run per-bank Chaitin/Briggs assignment (slower)",
    )
    args = parser.parse_args()

    loops = spec95_corpus(n=40 if args.quick else 211)
    summary = corpus_summary(loops)
    print(f"corpus: {summary}", flush=True)

    run = run_evaluation(
        loops=loops,
        config=PipelineConfig(run_regalloc=args.regalloc),
        progress=True,
    )
    print()
    print(render_full_report(run, corpus_note=f"corpus shape: {summary}"))


if __name__ == "__main__":
    main()
