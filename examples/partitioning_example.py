#!/usr/bin/env python3
"""The paper's Section 4.2 worked example, regenerated (Figures 1-3).

The statement ``xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)`` compiles to
11 intermediate operations.  This script prints:

1. the ideal 7-cycle schedule on a 2-wide, unit-latency machine with one
   monolithic register bank (Figure 1);
2. the register component graph built from that schedule (Figure 2);
3. the schedule after partitioning onto two single-FU clusters with the
   paper's own bank split, with its two inter-bank copies (Figure 3).

Run:  python examples/partitioning_example.py
"""

from repro.core.wholefn import compile_function
from repro.ddg import build_block_ddg
from repro.ir.printer import format_operation
from repro.machine import example_machine_2x1, ideal_machine, unit_latencies
from repro.sched import list_schedule
from repro.workloads import xpos_example_block, xpos_example_function


def paper_partition(block):
    """P1 = {r1, r2, r4, r5, r6, r10}, P2 = {r3, r7, r8, r9} (Section 4.2)."""
    regs = {r.name: r for op in block.ops for r in op.registers()}
    p1 = {"r1", "r2", "r4", "r5", "r6", "r10"}
    return {reg: (0 if name in p1 else 1) for name, reg in regs.items()}


def main() -> None:
    block = xpos_example_block()
    print("=== intermediate code (Figure 1/2 left column) ===")
    for op in block.ops:
        print(f"  {format_operation(op)}")

    ideal = ideal_machine(width=2, latencies=unit_latencies())
    ddg = build_block_ddg(block, ideal.latencies)
    sched = list_schedule(ddg, ideal)
    print(f"\n=== Figure 1: ideal schedule ({sched.length} cycles; paper: 7) ===")
    print(sched.format())

    fn = xpos_example_function()
    machine = example_machine_2x1()
    result = compile_function(
        fn, machine, precolored=paper_partition(fn.blocks[0])
    )

    print("\n=== Figure 2: register component graph ===")
    for a, b, w in result.rcg.edges():
        print(f"  {a} -- {b}: {w:+.2f}")

    print("\n=== the paper's partition ===")
    for bank in (0, 1):
        names = ", ".join(r.name for r in result.partition.registers_in_bank(bank))
        print(f"  bank {bank}: {names}")

    block_name = fn.blocks[0].name
    clustered = result.clustered_schedules[block_name]
    print(
        f"\n=== Figure 3: partitioned schedule "
        f"({clustered.length} cycles, {result.n_copies} copies; paper: 9 cycles, 2 copies) ==="
    )
    print(clustered.format())

    print(
        f"\nour list scheduler overlaps one copy with a load, beating the "
        f"paper's hand schedule by {9 - clustered.length} cycle(s)"
        if clustered.length < 9
        else ""
    )

    greedy = compile_function(xpos_example_function(), example_machine_2x1())
    gsched = greedy.clustered_schedules[block_name]
    print(
        f"fully automatic greedy partition: {gsched.length} cycles with "
        f"{greedy.n_copies} copies (hand partitions beat greedy heuristics "
        "on tiny fragments; the corpus benches measure the realistic case)"
    )


if __name__ == "__main__":
    main()
